(* Observability subsystem: spans, metrics, sinks, and the JSON codec
   they share.  Spans are driven on a fake clock so timings are exact;
   the file-sink tests parse their own output back with [Obs.Json]. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_str = Alcotest.(check string)

(* A settable clock: [advance] moves the shared timeline forward. *)
let fake_clock () =
  let t = ref 0.0 in
  ((fun () -> !t), fun dt -> t := !t +. dt)

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let now, advance = fake_clock () in
  Obs.Clock.with_source now (fun () ->
      let sink, events = Obs.Trace.collect () in
      Obs.Trace.with_sink sink (fun () ->
          Obs.Trace.with_span "run" (fun () ->
              advance 1.0;
              Obs.Trace.with_span "panel" (fun () ->
                  advance 2.0;
                  Obs.Trace.with_span "iter" (fun () -> advance 0.5));
              advance 0.25));
      match events () with
      | [ iter; panel; run ] ->
        (* completion order: innermost first *)
        check_str "names" "iter,panel,run"
          (String.concat "," [ iter.Obs.Trace.name; panel.name; run.name ]);
        check_int "iter depth" 2 iter.depth;
        check_int "panel depth" 1 panel.depth;
        check_int "run depth" 0 run.depth;
        check_float "iter ts" 3.0 iter.ts;
        check_float "iter dur" 0.5 iter.dur;
        check_float "panel ts" 1.0 panel.ts;
        check_float "panel dur" 2.5 panel.dur;
        check_float "run ts" 0.0 run.ts;
        check_float "run dur" 3.75 run.dur
      | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs))

let test_span_exception () =
  let now, advance = fake_clock () in
  Obs.Clock.with_source now (fun () ->
      let sink, events = Obs.Trace.collect () in
      Obs.Trace.with_sink sink (fun () ->
          (try
             Obs.Trace.with_span "boom" (fun () ->
                 advance 1.5;
                 failwith "inner")
           with Failure _ -> ());
          (* depth restored: the next span is a root again *)
          Obs.Trace.with_span "after" (fun () -> advance 1.0));
      match events () with
      | [ boom; after ] ->
        check_str "boom name" "boom" boom.Obs.Trace.name;
        check_float "boom dur" 1.5 boom.dur;
        check_int "boom depth" 0 boom.depth;
        check_int "after depth" 0 after.depth
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

let test_sink_restored () =
  check "disabled before" false (Obs.Trace.enabled ());
  let sink, _ = Obs.Trace.collect () in
  Obs.Trace.with_sink sink (fun () ->
      check "enabled inside" true (Obs.Trace.enabled ()));
  check "disabled after" false (Obs.Trace.enabled ());
  (try Obs.Trace.with_sink sink (fun () -> failwith "x")
   with Failure _ -> ());
  check "disabled after raise" false (Obs.Trace.enabled ())

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.counter" in
  check_int "fresh" 0 (Obs.Metrics.value c);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  check_int "bumped" 42 (Obs.Metrics.value c);
  (* find-or-create: same name, same underlying cell *)
  Obs.Metrics.incr (Obs.Metrics.counter "test.counter");
  check_int "shared" 43 (Obs.Metrics.value c);
  Obs.Metrics.reset ();
  (* the cached handle survives a reset *)
  check_int "reset" 0 (Obs.Metrics.value c);
  Obs.Metrics.incr c;
  check_int "usable after reset" 1 (Obs.Metrics.value c)

let test_histogram () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "test.hist" in
  let empty = Obs.Metrics.stats h in
  check_int "empty count" 0 empty.Obs.Metrics.count;
  List.iter (Obs.Metrics.observe h) [ 3.0; 1.0; 2.0 ];
  let s = Obs.Metrics.stats h in
  check_int "count" 3 s.Obs.Metrics.count;
  check_float "sum" 6.0 s.sum;
  check_float "min" 1.0 s.min;
  check_float "max" 3.0 s.max;
  check_float "mean" 2.0 s.mean

let test_snapshot () =
  Obs.Metrics.reset ();
  let b = Obs.Metrics.counter "test.b" in
  let a = Obs.Metrics.counter "test.a" in
  let _zero = Obs.Metrics.counter "test.zero" in
  Obs.Metrics.incr a;
  Obs.Metrics.add b 2;
  Obs.Metrics.observe (Obs.Metrics.histogram "test.h") 5.0;
  let snap = Obs.Metrics.snapshot () in
  (* sorted, zero-valued omitted *)
  check "counters sorted, zeros dropped" true
    (snap.Obs.Metrics.counters = [ ("test.a", 1); ("test.b", 2) ]);
  check_int "one histogram" 1 (List.length snap.histograms);
  let lines = Obs.Metrics.jsonl snap in
  check_int "jsonl lines" 3 (List.length lines);
  List.iter
    (fun line ->
      match Obs.Json.parse line with
      | Ok j ->
        check "jsonl has type" true (Obs.Json.member "type" j <> None);
        check "jsonl has name" true (Obs.Json.member "name" j <> None)
      | Error e -> Alcotest.failf "jsonl line %S: %s" line e)
    lines

let test_diff_window () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.win" in
  let idle = Obs.Metrics.counter "test.idle" in
  let h = Obs.Metrics.histogram "test.winh" in
  Obs.Metrics.add c 5;
  Obs.Metrics.incr idle;
  Obs.Metrics.observe h 10.0;
  let before = Obs.Metrics.snapshot () in
  Obs.Metrics.add c 3;
  Obs.Metrics.observe h 2.0;
  Obs.Metrics.observe h 4.0;
  let after = Obs.Metrics.snapshot () in
  let d = Obs.Metrics.diff ~before ~after in
  (* only what moved inside the window, as window-local deltas *)
  check "moved counter present" true
    (List.mem_assoc "test.win" d.Obs.Metrics.counters);
  check_int "counter delta" 3 (Obs.Metrics.counter_delta d "test.win");
  check "idle counter omitted" false
    (List.mem_assoc "test.idle" d.Obs.Metrics.counters);
  check_int "omitted reads zero" 0 (Obs.Metrics.counter_delta d "test.idle");
  (match List.assoc_opt "test.winh" d.Obs.Metrics.histograms with
  | None -> Alcotest.fail "moved histogram omitted from diff"
  | Some s ->
    check_int "window count" 2 s.Obs.Metrics.count;
    check_float "window sum" 6.0 s.sum;
    check_float "window mean" 3.0 s.mean);
  (* an empty window diffs to an empty snapshot *)
  let d0 = Obs.Metrics.diff ~before:after ~after in
  check "empty window, no counters" true (d0.Obs.Metrics.counters = []);
  check "empty window, no histograms" true (d0.Obs.Metrics.histograms = [])

(* ------------------------------------------------------------------ *)
(* File sinks parse back                                              *)
let test_sampled_percentiles () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.sampled "test.sampled" in
  check "nan before any sample" true
    (Float.is_nan (Obs.Metrics.percentile h 50.0));
  for v = 1 to 100 do
    Obs.Metrics.observe h (float_of_int v)
  done;
  check_float "p50 nearest rank" 50.0 (Obs.Metrics.percentile h 50.0);
  check_float "p99" 99.0 (Obs.Metrics.percentile h 99.0);
  check_float "p100 is the max" 100.0 (Obs.Metrics.percentile h 100.0);
  check_float "p0 clamps to the min" 1.0 (Obs.Metrics.percentile h 0.0);
  let plain = Obs.Metrics.histogram "test.plain" in
  Obs.Metrics.observe plain 5.0;
  check "unsampled histograms stay percentile-free" true
    (Float.is_nan (Obs.Metrics.percentile plain 50.0))

let test_sampled_reservoir_cap () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.sampled ~reservoir:4 "test.capped" in
  for v = 1 to 10 do
    Obs.Metrics.observe h (float_of_int v)
  done;
  let s = Obs.Metrics.stats h in
  check_int "stats see every sample" 10 s.Obs.Metrics.count;
  (* the reservoir keeps the first N; later samples still hit stats *)
  check_float "percentiles rank the retained samples" 4.0
    (Obs.Metrics.percentile h 100.0)

(* ------------------------------------------------------------------ *)
(* Atomic artifact writes                                              *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  body

let test_fsio_atomic () =
  let dir = Filename.temp_file "fsio_test" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let path = Filename.concat dir "artifact.json" in
      Obs.Fsio.atomic_write path "v1";
      check_str "first write lands" "v1" (read_file path);
      Obs.Fsio.atomic_write path "v2";
      check_str "overwrite replaces" "v2" (read_file path);
      (* an aborted streaming write leaves the target untouched *)
      let p = Obs.Fsio.open_atomic path in
      output_string (Obs.Fsio.channel p) "partial garbage";
      Obs.Fsio.abort p;
      check_str "abort leaves old content" "v2" (read_file path);
      check_int "no temp litter after abort" 1 (Array.length (Sys.readdir dir));
      let p = Obs.Fsio.open_atomic path in
      output_string (Obs.Fsio.channel p) "v3";
      Obs.Fsio.commit p;
      Obs.Fsio.commit p;
      (* idempotent *)
      check_str "commit promotes" "v3" (read_file path);
      check_int "no temp litter after commit" 1
        (Array.length (Sys.readdir dir)))

(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let emit_sample_spans sink =
  let now, advance = fake_clock () in
  Obs.Clock.with_source now (fun () ->
      Obs.Trace.with_sink sink (fun () ->
          Obs.Trace.with_span "outer" (fun () ->
              advance 1.0;
              Obs.Trace.with_span "inner" (fun () -> advance 0.5))))

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let test_jsonl_sink () =
  with_temp_file (fun path ->
      let oc = open_out path in
      emit_sample_spans (Obs.Trace.jsonl oc);
      close_out oc;
      let lines = List.filter (fun l -> String.trim l <> "") (read_lines path) in
      check_int "two span lines" 2 (List.length lines);
      List.iter
        (fun line ->
          match Obs.Json.parse line with
          | Error e -> Alcotest.failf "jsonl %S: %s" line e
          | Ok j ->
            check "type span" true
              (Obs.Json.member "type" j = Some (Obs.Json.Str "span"));
            List.iter
              (fun k -> check ("has " ^ k) true (Obs.Json.member k j <> None))
              [ "name"; "ts"; "dur"; "depth" ])
        lines)

let test_chrome_sink () =
  with_temp_file (fun path ->
      let oc = open_out path in
      emit_sample_spans (Obs.Trace.chrome oc);
      close_out oc;
      let ic = open_in path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      match Obs.Json.parse body with
      | Error e -> Alcotest.failf "chrome trace: %s" e
      | Ok (Obs.Json.List events) ->
        check_int "two events" 2 (List.length events);
        List.iter
          (fun ev ->
            check "complete event" true
              (Obs.Json.member "ph" ev = Some (Obs.Json.Str "X"));
            List.iter
              (fun k ->
                check ("has " ^ k) true (Obs.Json.member k ev <> None))
              [ "name"; "ts"; "dur"; "pid"; "tid" ])
          events;
        (* microsecond timeline: inner starts at 1s = 1e6 µs *)
        let inner = List.hd events in
        check "inner ts in µs" true
          (Obs.Json.member "ts" inner = Some (Obs.Json.Num 1_000_000.0))
      | Ok _ -> Alcotest.fail "chrome trace is not a JSON array")

(* ------------------------------------------------------------------ *)
(* JSON codec round trips                                             *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let open Obs.Json in
  let v =
    Obj
      [
        ("s", Str "a\"b\\c\nd");
        ("n", Num 1.5);
        ("i", num_int 123456789);
        ("b", Bool true);
        ("z", Null);
        ("l", List [ Num 1.0; Str "x"; Obj [] ]);
      ]
  in
  (match parse (to_string v) with
  | Ok v' -> check "compact roundtrip" true (v = v')
  | Error e -> Alcotest.failf "compact: %s" e);
  (match parse (to_string_pretty v) with
  | Ok v' -> check "pretty roundtrip" true (v = v')
  | Error e -> Alcotest.failf "pretty: %s" e);
  (match parse {| {"u": "\u00e9A"} |} with
  | Ok j -> check "unicode escape" true (member "u" j = Some (Str "\xc3\xa9A"))
  | Error e -> Alcotest.failf "unicode: %s" e);
  check "trailing garbage rejected" true (Result.is_error (parse "1 2"));
  check "bare word rejected" true (Result.is_error (parse "nope"))

(* ------------------------------------------------------------------ *)
(* Disabled-path overhead                                             *)
(* ------------------------------------------------------------------ *)

(* Top-level thunk so the loop below doesn't allocate a closure per
   iteration; what we are measuring is [with_span] itself. *)
let nop () = ()

let test_noop_no_alloc () =
  Obs.Trace.clear_sink ();
  check "sink disabled" false (Obs.Trace.enabled ());
  let c = Obs.Metrics.counter "test.noalloc" in
  (* warm up: first calls may allocate lazily *)
  Obs.Trace.with_span "warm" nop;
  Obs.Metrics.incr c;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.Trace.with_span "hot" nop;
    Obs.Metrics.incr c
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256.0 then
    Alcotest.failf "disabled instrumentation allocated %.0f minor words" delta

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting and ordering" `Quick
            test_span_nesting;
          Alcotest.test_case "span finishes on exception" `Quick
            test_span_exception;
          Alcotest.test_case "with_sink restores" `Quick test_sink_restored;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "snapshot and jsonl" `Quick test_snapshot;
          Alcotest.test_case "diff windows" `Quick test_diff_window;
          Alcotest.test_case "sampled percentiles" `Quick
            test_sampled_percentiles;
          Alcotest.test_case "reservoir cap" `Quick test_sampled_reservoir_cap;
        ] );
      ( "fsio",
        [ Alcotest.test_case "atomic writes" `Quick test_fsio_atomic ] );
      ( "sinks",
        [
          Alcotest.test_case "jsonl parses back" `Quick test_jsonl_sink;
          Alcotest.test_case "chrome trace parses back" `Quick
            test_chrome_sink;
        ] );
      ( "json",
        [ Alcotest.test_case "roundtrip and escapes" `Quick test_json_roundtrip ] );
      ( "overhead",
        [
          Alcotest.test_case "disabled path allocation-free" `Quick
            test_noop_no_alloc;
        ] );
    ]
