(* The crash-safe ECO service end to end: the WAL round-trips and
   survives torn tails, the wire protocol stays framed under garbage,
   and the broker honours its durability contract — a crash at the
   worst moment (between journal append and apply, or before the
   commit marker) loses exactly the unacknowledged batches and
   nothing else, with the recovered state audit-certified and
   bit-identical to an uninterrupted run over the acked prefix. *)

module I = Geometry.Interval
module B = Netlist.Builder
module Design = Netlist.Design
module Design_io = Netlist.Design_io
module Delta = Eco.Delta
module Engine = Eco.Engine
module P = Serve.Protocol
module Server = Serve.Server
module Wal = Serve.Wal
module Fault = Pinaccess.Fault

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* -- fixtures ------------------------------------------------------- *)

let base_design () =
  B.design ~width:20 ~height:10
    ~nets:
      [
        ("a", [ B.pin_at 2 2; B.pin_at 17 6 ]);
        ("b", [ B.pin_at 9 3; B.pin_at 9 8 ]);
        ("c", [ B.pin_at 3 2; B.pin_at 13 2 ]);
      ]
    ()

let batch1 =
  [
    Delta.Move_pin
      {
        from_ = { Delta.at_x = 2; at_track = 2 };
        shape = { Delta.x = 4; tracks = I.point 2 };
      };
  ]

let batch2 =
  [
    Delta.Add_pin
      { net = "b"; shape = { Delta.x = 6; tracks = I.make ~lo:4 ~hi:5 } };
  ]

let batch3 = [ Delta.Remove_pin { Delta.at_x = 13; at_track = 2 } ]

let design_text batches =
  Design_io.to_string
    (List.fold_left Delta.apply_all (base_design ()) batches)

let with_temp_root f =
  let root = Filename.temp_file "serve_test" ".d" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm root with Sys_error _ -> ()) (fun () -> f root)

(* A config with no real sleeping and deterministic clocks. *)
let test_config ?(checkpoint_every = 1000) ?(queue_capacity = 64)
    ?(global_capacity = 256) ?(max_retries = 2) ?(on_backoff = fun _ -> ())
    root =
  {
    (Server.default_config ~root) with
    Server.checkpoint_every;
    queue_capacity;
    global_capacity;
    max_retries;
    on_backoff;
  }

let ok_field resp key =
  match resp with
  | P.Resp_ok fields -> P.field fields key
  | _ -> None

let expect_ok name = function
  | P.Resp_ok fields -> fields
  | P.Resp_err (code, msg) ->
    Alcotest.failf "%s: err %s %s" name (P.err_code_to_string code) msg
  | P.Resp_data _ -> Alcotest.failf "%s: unexpected data response" name

let expect_err name code = function
  | P.Resp_err (c, _) ->
    check_str name (P.err_code_to_string code) (P.err_code_to_string c)
  | P.Resp_ok _ -> Alcotest.failf "%s: expected err, got ok" name
  | P.Resp_data _ -> Alcotest.failf "%s: expected err, got data" name

let dump t session =
  match Server.handle t (P.Get_design session) with
  | P.Resp_data (_, payload) -> payload
  | _ -> Alcotest.fail "design dump failed"

let open_session t name =
  ignore
    (expect_ok "open"
       (Server.handle t (P.Open (name, Design_io.to_string (base_design ())))))

let edit ?(opts = P.no_opts) t name deltas =
  Server.handle t (P.Edit (name, opts, Delta.to_string deltas))

(* -- WAL ------------------------------------------------------------ *)

let test_wal_roundtrip () =
  with_temp_root @@ fun root ->
  let d = base_design () in
  let w = Wal.init ~root "s" ~clearance:2 d in
  Wal.append w ~seq:1 batch1;
  Wal.commit w ~seq:1;
  Wal.append w ~seq:2 batch2;
  Wal.abort w ~seq:2;
  Wal.append w ~seq:3 batch3;
  Wal.commit w ~seq:3;
  check_int "last_seq_on_disk" 3 (Wal.last_seq_on_disk w);
  Wal.close w;
  let r, w = Wal.recover ~root "s" in
  check_int "checkpoint seq" 0 r.Wal.checkpoint_seq;
  check_int "clearance" 2 r.Wal.clearance;
  check_int "last seq" 3 r.Wal.last_seq;
  check_int "no torn records" 0 r.Wal.torn;
  check "aborted batch skipped" true
    (List.map fst r.Wal.replay = [ 1; 3 ]
    && List.map snd r.Wal.replay = [ batch1; batch3 ]);
  check_str "checkpoint design round-trips" (Design_io.to_string d)
    (Design_io.to_string r.Wal.design);
  Wal.close w

let append_raw ~root name text =
  let path = Filename.concat (Wal.session_dir ~root name) "wal.log" in
  let oc =
    open_out_gen [ Open_append; Open_wronly; Open_creat ] 0o644 path
  in
  output_string oc text;
  close_out oc

let test_wal_torn_tail () =
  with_temp_root @@ fun root ->
  let w = Wal.init ~root "s" ~clearance:2 (base_design ()) in
  Wal.append w ~seq:1 batch1;
  Wal.commit w ~seq:1;
  Wal.close w;
  (* a header and half a payload, no commit: the write was torn *)
  append_raw ~root "s" "batch 2 0123456789abcdef0123456789abcdef\nmove";
  let r, w = Wal.recover ~root "s" in
  check_int "one torn record" 1 r.Wal.torn;
  check_int "committed prefix survives" 1 (List.length r.Wal.replay);
  check_int "last seq is the committed one" 1 r.Wal.last_seq;
  (* recovery compacted the journal: a second recover is clean *)
  Wal.close w;
  let r2, w2 = Wal.recover ~root "s" in
  check_int "compaction removed the tear" 0 r2.Wal.torn;
  check_int "replay unchanged" 1 (List.length r2.Wal.replay);
  Wal.close w2

let test_wal_digest_mismatch () =
  with_temp_root @@ fun root ->
  let w = Wal.init ~root "s" ~clearance:2 (base_design ()) in
  Wal.append w ~seq:1 batch1;
  Wal.commit w ~seq:1;
  Wal.close w;
  (* a fully framed record whose digest does not match its payload —
     and a valid record after it, which must also be discarded (the
     journal is only trusted up to the first defect) *)
  append_raw ~root "s"
    ("batch 2 00000000000000000000000000000000\n" ^ Delta.to_string batch2
   ^ "commit 2\n");
  let digest = Digest.to_hex (Digest.string (Delta.to_string batch3)) in
  append_raw ~root "s"
    (Printf.sprintf "batch 3 %s\n%scommit 3\n" digest (Delta.to_string batch3));
  let r, w = Wal.recover ~root "s" in
  check "everything after the defect is dropped" true (r.Wal.torn >= 1);
  check_int "only the clean prefix replays" 1 (List.length r.Wal.replay);
  Wal.close w

let test_wal_checkpoint_truncates () =
  with_temp_root @@ fun root ->
  let w = Wal.init ~root "s" ~clearance:2 (base_design ()) in
  Wal.append w ~seq:1 batch1;
  Wal.commit w ~seq:1;
  let folded = Delta.apply_all (base_design ()) batch1 in
  Wal.checkpoint w ~seq:1 ~clearance:3 folded;
  Wal.append w ~seq:2 batch2;
  Wal.commit w ~seq:2;
  Wal.close w;
  let r, w = Wal.recover ~root "s" in
  check_int "checkpoint seq advanced" 1 r.Wal.checkpoint_seq;
  check_int "clearance carried" 3 r.Wal.clearance;
  check_str "checkpoint holds the folded design" (Design_io.to_string folded)
    (Design_io.to_string r.Wal.design);
  check "only post-checkpoint batches replay" true
    (List.map fst r.Wal.replay = [ 2 ]);
  Wal.close w

let test_wal_torn_append_repair () =
  with_temp_root @@ fun root ->
  let w = Wal.init ~root "s" ~clearance:2 (base_design ()) in
  Wal.append w ~seq:1 batch1;
  Wal.commit w ~seq:1;
  (* tear the next append mid-payload via the fault hook *)
  (try
     Fault.with_hook
       (fun p -> if p = Fault.Wal_append then failwith "torn write")
       (fun () -> Wal.append w ~seq:2 batch2);
     Alcotest.fail "append should have torn"
   with Failure _ -> ());
  Wal.repair w;
  (* seq 2 was never consumed; the journal accepts it again *)
  Wal.append w ~seq:2 batch2;
  Wal.commit w ~seq:2;
  Wal.close w;
  let r, w = Wal.recover ~root "s" in
  check_int "no torn records after repair" 0 r.Wal.torn;
  check "both batches replay" true (List.map fst r.Wal.replay = [ 1; 2 ]);
  Wal.close w

let test_wal_names () =
  check "plain names ok" true (Wal.valid_name "load-0_a.b");
  check "empty rejected" false (Wal.valid_name "");
  check "slash rejected" false (Wal.valid_name "a/b");
  check "dot rejected" false (Wal.valid_name ".");
  check "dotdot rejected" false (Wal.valid_name "..")

(* -- protocol ------------------------------------------------------- *)

let getline_of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  fun () ->
    match !lines with
    | [] | [ "" ] -> None
    | l :: rest ->
      lines := rest;
      Some l

let test_protocol_request_roundtrip () =
  let requests =
    [
      P.Open ("s0", Design_io.to_string (base_design ()));
      P.Attach "s1";
      P.Edit
        ( "s2",
          { P.deadline_ms = Some 250; work = Some 10_000 },
          Delta.to_string batch1 );
      P.Edit ("s2", P.no_opts, Delta.to_string batch2);
      P.Submit ("s3", Delta.to_string batch3);
      P.Flush ("s3", { P.deadline_ms = Some 5; work = None });
      P.Get_design "s4";
      P.Stat "s5";
      P.Checkpoint "s6";
      P.Close "s7";
      P.Sessions;
      P.Ping;
      P.Quit;
    ]
  in
  let wire = String.concat "" (List.map P.request_to_string requests) in
  let getline = getline_of_string wire in
  List.iteri
    (fun i expected ->
      match P.read_request ~getline with
      | Some (Ok got) -> check (Printf.sprintf "request %d" i) true (got = expected)
      | Some (Error e) -> Alcotest.failf "request %d failed to parse: %s" i e
      | None -> Alcotest.failf "stream ended before request %d" i)
    requests;
  check "stream drained" true (P.read_request ~getline = None)

let test_protocol_response_roundtrip () =
  let responses =
    [
      P.Resp_ok [];
      P.Resp_ok [ ("seq", "12"); ("degraded", "0") ];
      P.Resp_err (P.Timeout, "deadline exhausted in lr");
      P.Resp_err (P.Overloaded, "queue full");
      P.Resp_data ([ ("seq", "3") ], Design_io.to_string (base_design ()));
    ]
  in
  let wire = String.concat "" (List.map P.response_to_string responses) in
  let getline = getline_of_string wire in
  List.iteri
    (fun i expected ->
      match P.read_response ~getline with
      | Some got -> check (Printf.sprintf "response %d" i) true (got = expected)
      | None -> Alcotest.failf "stream ended before response %d" i)
    responses;
  check "stream drained" true (P.read_response ~getline = None)

let test_protocol_framing_survives_garbage () =
  (* a bogus command, then a malformed body-carrying command: both must
     be rejected while leaving the stream framed so [ping] still parses *)
  let wire =
    "frobnicate now\n" ^ "edit\n" ^ Delta.to_string batch1 ^ ".\n"
    ^ "# comment\n\n" ^ "ping\n"
  in
  let getline = getline_of_string wire in
  (match P.read_request ~getline with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "bogus command should be a parse error");
  (match P.read_request ~getline with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "edit without a session should be a parse error");
  match P.read_request ~getline with
  | Some (Ok P.Ping) -> ()
  | _ -> Alcotest.fail "stream lost framing after the bad requests"

(* -- server --------------------------------------------------------- *)

let test_server_edit_pipeline () =
  with_temp_root @@ fun root ->
  let t = Server.create (test_config root) in
  open_session t "s";
  let fields = expect_ok "edit 1" (edit t "s" batch1) in
  check "seq 1" true (P.field fields "seq" = Some "1");
  let fields = expect_ok "edit 2" (edit t "s" batch2) in
  check "seq 2" true (P.field fields "seq" = Some "2");
  check_str "design is the fold of acked batches"
    (design_text [ batch1; batch2 ])
    (dump t "s");
  let stat = expect_ok "stat" (Server.handle t (P.Stat "s")) in
  check "stat seq" true (P.field stat "seq" = Some "2");
  expect_err "unknown session" P.Unknown_session
    (edit t "nope" batch1);
  expect_err "duplicate open" P.Session_exists
    (Server.handle t (P.Open ("s", Design_io.to_string (base_design ()))));
  Server.shutdown t

let test_server_deadline_timeout () =
  with_temp_root @@ fun root ->
  let t = Server.create (test_config root) in
  open_session t "s";
  let before = dump t "s" in
  expect_err "zero deadline" P.Timeout
    (edit t "s" ~opts:{ P.deadline_ms = Some 0; work = None } batch1);
  check_str "engine state unchanged" before (dump t "s");
  (* the sequence number was not consumed by the rejected batch *)
  let fields = expect_ok "edit after timeout" (edit t "s" batch1) in
  check "seq 1" true (P.field fields "seq" = Some "1");
  Server.shutdown t

let test_server_shedding () =
  with_temp_root @@ fun root ->
  let t =
    Server.create (test_config ~queue_capacity:1 ~global_capacity:2 root)
  in
  open_session t "a";
  open_session t "b";
  let submit name deltas =
    Server.handle t (P.Submit (name, Delta.to_string deltas))
  in
  ignore (expect_ok "a queues one" (submit "a" batch1));
  expect_err "session queue full" P.Overloaded (submit "a" batch2);
  ignore (expect_ok "b queues one" (submit "b" batch1));
  (* global backlog (2) saturated: submits and synchronous edits shed *)
  expect_err "global backlog full" P.Overloaded (submit "b" batch2);
  expect_err "edit shed under global pressure" P.Overloaded (edit t "a" batch2);
  (* flushing drains the backlog and re-opens admission *)
  let fields = expect_ok "flush a" (Server.handle t (P.Flush ("a", P.no_opts))) in
  check "flush applied" true (P.field fields "applied" = Some "1");
  ignore (expect_ok "edit admitted again" (edit t "a" batch2));
  Server.shutdown t

let test_server_worker_retry () =
  with_temp_root @@ fun root ->
  let backoffs = ref [] in
  let t =
    Server.create
      (test_config ~max_retries:2 ~on_backoff:(fun s -> backoffs := s :: !backoffs)
         root)
  in
  open_session t "s";
  (* first two solve attempts die; the third lands the batch *)
  let trips = ref 0 in
  let resp =
    Fault.with_hook
      (fun p ->
        if p = Fault.Worker then begin
          incr trips;
          if !trips <= 2 then failwith "worker died"
        end)
      (fun () -> edit t "s" batch1)
  in
  ignore (expect_ok "lands after retries" resp);
  check_int "two backoffs" 2 (List.length !backoffs);
  check "backoff is exponential" true
    (match List.rev !backoffs with
    | [ b0; b1 ] -> b1 > b0 && b0 > 0.0
    | _ -> false);
  check_str "design advanced" (design_text [ batch1 ]) (dump t "s");
  Server.shutdown t

let test_server_worker_exhausted () =
  with_temp_root @@ fun root ->
  let t = Server.create (test_config ~max_retries:1 root) in
  open_session t "s";
  let before = dump t "s" in
  let resp =
    Fault.with_hook
      (fun p -> if p = Fault.Worker then failwith "worker keeps dying")
      (fun () -> edit t "s" batch1)
  in
  expect_err "refused after bounded retries" P.Worker_failed resp;
  check_str "engine state unchanged" before (dump t "s");
  (* the journal stayed parseable: the failed batch was aborted, and
     the session keeps working once the fault clears *)
  ignore (expect_ok "next edit lands" (edit t "s" batch1));
  check_str "design is the fold of acked batches only"
    (design_text [ batch1 ]) (dump t "s");
  Server.shutdown t

(* Process death between journal append and engine apply: the
   exception is not in [Cpr_error.recoverable], so it escapes [handle]
   exactly like a crash — the broker is discarded, a new one attaches,
   and recovery must reconstruct precisely the acked prefix. *)
exception Crash

let test_server_crash_recovery () =
  with_temp_root @@ fun root ->
  let t = Server.create (test_config root) in
  open_session t "s";
  ignore (expect_ok "batch 1 acked" (edit t "s" batch1));
  (try
     ignore
       (Fault.with_hook
          (fun p -> if p = Fault.Serve_apply then raise Crash)
          (fun () -> edit t "s" batch2));
     Alcotest.fail "the crash should have escaped handle"
   with Crash -> ());
  (* t is dead; a fresh broker recovers from disk *)
  let t2 = Server.create (test_config root) in
  let fields = expect_ok "attach" (Server.handle t2 (P.Attach "s")) in
  check "replayed the acked batch" true (P.field fields "replayed" = Some "1");
  check "the in-flight batch was torn" true (P.field fields "torn" = Some "1");
  check_str "recovered design = fold of acked prefix (bit-identical)"
    (design_text [ batch1 ]) (dump t2 "s");
  (* attach audits the recovered assignment (audit_on_recover default);
     the session then keeps serving *)
  let fields = expect_ok "edit after recovery" (edit t2 "s" batch2) in
  check "seq continues past the torn record" true
    (P.field fields "seq" = Some "2");
  check_str "final design folds both batches" (design_text [ batch1; batch2 ])
    (dump t2 "s");
  Server.shutdown t2

let test_server_commit_failure_resync () =
  with_temp_root @@ fun root ->
  let t = Server.create (test_config root) in
  open_session t "s";
  let before = dump t "s" in
  let tripped = ref false in
  let resp =
    Fault.with_hook
      (fun p ->
        if p = Fault.Wal_commit && not !tripped then begin
          tripped := true;
          failwith "commit marker lost"
        end)
      (fun () -> edit t "s" batch1)
  in
  expect_err "commit failure is an internal error" P.Internal resp;
  (* the engine had applied the batch, but the journal never durably
     committed it: resync must roll the session back to disk truth *)
  check_str "session rolled back" before (dump t "s");
  let stat = expect_ok "stat" (Server.handle t (P.Stat "s")) in
  check "seq rolled back" true (P.field stat "seq" = Some "0");
  (* the client retries; this time it lands *)
  let fields = expect_ok "retry lands" (edit t "s" batch1) in
  check "seq 1" true (P.field fields "seq" = Some "1");
  check_str "design advanced once" (design_text [ batch1 ]) (dump t "s");
  Server.shutdown t

let test_server_interrupted_apply_aborts () =
  with_temp_root @@ fun root ->
  let t = Server.create (test_config root) in
  open_session t "s";
  let resp =
    Fault.with_hook
      (fun p -> if p = Fault.Serve_apply then failwith "recoverable blip")
      (fun () -> edit t "s" batch1)
  in
  expect_err "recoverable interruption fails the batch" P.Internal resp;
  (* the aborted record consumed seq 1; the journal stays parseable *)
  ignore (expect_ok "next batch lands" (edit t "s" batch2));
  check_str "only the acked batch applied" (design_text [ batch2 ])
    (dump t "s");
  Server.shutdown t;
  let t2 = Server.create (test_config root) in
  ignore (expect_ok "attach over the abort record" (Server.handle t2 (P.Attach "s")));
  check_str "recovery skips the aborted batch" (design_text [ batch2 ])
    (dump t2 "s");
  Server.shutdown t2

let test_server_checkpoint_cadence () =
  with_temp_root @@ fun root ->
  let t = Server.create (test_config ~checkpoint_every:2 root) in
  open_session t "s";
  ignore (expect_ok "edit 1" (edit t "s" batch1));
  let stat = expect_ok "stat" (Server.handle t (P.Stat "s")) in
  check "one commit since checkpoint" true
    (P.field stat "since_checkpoint" = Some "1");
  ignore (expect_ok "edit 2" (edit t "s" batch2));
  let stat = expect_ok "stat" (Server.handle t (P.Stat "s")) in
  check "checkpoint fired at the cadence" true
    (P.field stat "since_checkpoint" = Some "0");
  Server.shutdown t;
  (* the checkpoint baked both batches in: recovery replays nothing *)
  let t2 = Server.create (test_config root) in
  let fields = expect_ok "attach" (Server.handle t2 (P.Attach "s")) in
  check "nothing to replay" true (P.field fields "replayed" = Some "0");
  check_str "checkpointed design" (design_text [ batch1; batch2 ])
    (dump t2 "s");
  Server.shutdown t2

let test_server_sessions_listing () =
  with_temp_root @@ fun root ->
  let t = Server.create (test_config root) in
  open_session t "a";
  open_session t "b";
  ignore (expect_ok "close b" (Server.handle t (P.Close "b")));
  let fields = expect_ok "sessions" (Server.handle t P.Sessions) in
  check "a attached" true (P.field fields "attached" = Some "a");
  check "b detached but on disk" true (P.field fields "detached" = Some "b");
  check "ping answers" true (ok_field (Server.handle t P.Ping) "seq" = None);
  Server.shutdown t

(* -- load generator ------------------------------------------------- *)

let test_loadgen_in_process () =
  with_temp_root @@ fun root ->
  let t = Server.create (test_config root) in
  let outcome =
    Serve.Loadgen.run ~design:(base_design ())
      { Serve.Loadgen.default with clients = 2; steps = 4; edits_per_step = 2 }
      (Server.handle t)
  in
  check_int "all batches acked" outcome.Serve.Loadgen.sent
    outcome.Serve.Loadgen.acked;
  check "no mismatches" true (outcome.Serve.Loadgen.mismatches = []);
  check "latency percentiles populated" true
    (outcome.Serve.Loadgen.p50_ms >= 0.0
    && outcome.Serve.Loadgen.p99_ms >= outcome.Serve.Loadgen.p50_ms);
  Server.shutdown t

let () =
  Alcotest.run "serve"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip with abort" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail discarded" `Quick test_wal_torn_tail;
          Alcotest.test_case "digest mismatch ends trust" `Quick
            test_wal_digest_mismatch;
          Alcotest.test_case "checkpoint truncates" `Quick
            test_wal_checkpoint_truncates;
          Alcotest.test_case "torn append repaired" `Quick
            test_wal_torn_append_repair;
          Alcotest.test_case "session names" `Quick test_wal_names;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick
            test_protocol_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick
            test_protocol_response_roundtrip;
          Alcotest.test_case "framing survives garbage" `Quick
            test_protocol_framing_survives_garbage;
        ] );
      ( "server",
        [
          Alcotest.test_case "edit pipeline" `Quick test_server_edit_pipeline;
          Alcotest.test_case "deadline timeout" `Quick
            test_server_deadline_timeout;
          Alcotest.test_case "overload shedding" `Quick test_server_shedding;
          Alcotest.test_case "worker retry with backoff" `Quick
            test_server_worker_retry;
          Alcotest.test_case "worker failure bounded" `Quick
            test_server_worker_exhausted;
          Alcotest.test_case "crash recovery (kill mid-batch)" `Quick
            test_server_crash_recovery;
          Alcotest.test_case "commit failure resyncs" `Quick
            test_server_commit_failure_resync;
          Alcotest.test_case "interrupted apply aborts" `Quick
            test_server_interrupted_apply_aborts;
          Alcotest.test_case "checkpoint cadence" `Quick
            test_server_checkpoint_cadence;
          Alcotest.test_case "sessions listing" `Quick
            test_server_sessions_listing;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "in-process consistency" `Quick
            test_loadgen_in_process;
        ] );
    ]
