(* Adaptive scheduling layer (lib/tune): policy reification, the
   feature extractor, the seeded bandit's arithmetic, and the tuner's
   end-to-end contracts — off leaves no trace, a seeded bandit is
   deterministic at any [-j], and a recorded trace replays to the same
   bytes. *)

module PA = Pinaccess.Pin_access
module Policy = Tune.Policy
module Features = Tune.Features
module Bandit = Tune.Bandit
module Tuner = Tune.Tuner
module Suite = Workloads.Suite

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let design () = Suite.design ~scale:0.05 (Suite.find "ecc")

(* ------------------------------------------------------------------ *)
(* Policy                                                             *)
(* ------------------------------------------------------------------ *)

let test_policy_ids () =
  List.iter
    (fun p ->
      match Policy.of_id (Policy.id p) with
      | Some p' -> check ("roundtrip " ^ Policy.id p) true (p = p')
      | None -> Alcotest.failf "id %s does not parse back" (Policy.id p))
    Policy.all;
  check "ids unique" true
    (let ids = List.map Policy.id Policy.all in
     List.length ids = List.length (List.sort_uniq String.compare ids));
  check "unknown id rejected" true (Policy.of_id "lr-k42" = None);
  check "k95 is baseline" true (Policy.is_baseline (Policy.Lr_step Policy.Lr_k95));
  check "patience is not" false
    (Policy.is_baseline (Policy.Lr_step Policy.Lr_patience))

let test_policy_apply () =
  let base = PA.default_config in
  (* the baseline arm must be the identity on any config *)
  check "k95 identity" true (Policy.apply_lr Policy.Lr_k95 base = base);
  let k70 = Policy.apply_lr Policy.Lr_k70 base in
  Alcotest.(check (float 1e-9))
    "k70 alpha" 0.70 k70.PA.lr.Pinaccess.Lagrangian.alpha;
  let halve = Policy.apply_lr Policy.Lr_halve base in
  check "halve flag" true halve.PA.lr.Pinaccess.Lagrangian.stall_halving;
  let pat = Policy.apply_lr Policy.Lr_patience base in
  check "patience plateau" true
    (pat.PA.lr.Pinaccess.Lagrangian.plateau_exit = Some 40);
  check "arm 0 is the baseline" true (Policy.lr_arms.(0) = Policy.Lr_k95);
  (* Lr_warm is a cold-solve identity: keeping it out of the arm set
     stops it diluting exploration as a baseline clone *)
  check "warm not an arm" false (Array.mem Policy.Lr_warm Policy.lr_arms)

(* ------------------------------------------------------------------ *)
(* Features                                                           *)
(* ------------------------------------------------------------------ *)

let test_features () =
  let d = design () in
  let problem = PA.build_panel PA.default_config d ~panel:0 in
  let f = Features.of_problem ~panel:0 problem in
  let f' = Features.of_problem ~panel:0 problem in
  check "deterministic" true (f = f');
  check_int "pins" (Pinaccess.Problem.num_pins problem) f.Features.pins;
  check "ub positive" true (f.Features.profit_ub > 0.0);
  (* the conflict-free relaxation bounds any feasible solve *)
  let _, objective, _, _ =
    PA.solve_panel ~kind:PA.Lr ~panel:0 problem
  in
  check "ub sandwiches the solve" true (objective <= f.Features.profit_ub);
  check "signature stable" true
    (Features.signature f = Features.signature f')

(* ------------------------------------------------------------------ *)
(* Bandit                                                             *)
(* ------------------------------------------------------------------ *)

let arms3 = [| "a"; "b"; "c" |]

let test_bandit_explores_then_exploits () =
  let b = Bandit.create ~explore:0.02 ~arms:arms3 ~seed:7L () in
  (* forced exploration: the first pulls of a bucket cover every arm *)
  let first =
    List.init 3 (fun _ ->
        let i = Bandit.select b ~bucket:"x" in
        Bandit.observe b ~bucket:"x" ~arm:i
          ~reward:(if arms3.(i) = "b" then 0.9 else 0.1);
        i)
  in
  check "all arms tried first" true
    (List.sort_uniq compare first = [ 0; 1; 2 ]);
  (* then UCB locks onto the rewarded arm *)
  let picks = Array.make 3 0 in
  for _ = 1 to 20 do
    let i = Bandit.select b ~bucket:"x" in
    picks.(i) <- picks.(i) + 1;
    Bandit.observe b ~bucket:"x" ~arm:i
      ~reward:(if arms3.(i) = "b" then 0.9 else 0.1)
  done;
  check "exploits the best arm" true (picks.(1) > picks.(0) + picks.(2));
  check_int "pulls counted" 23 (Bandit.pulls b);
  check "regret nonnegative" true (Bandit.regret_proxy b >= 0.0);
  check_int "histogram sums to pulls" 23
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (Bandit.histogram b))

let test_bandit_pending_not_zero_reward () =
  (* wave discipline: a whole wave selects before any reward lands.
     A pending pull must shrink the arm's confidence bonus WITHOUT
     cratering its mean — treating it as reward 0 would round-robin
     inside every wave instead of exploiting. *)
  let b = Bandit.create ~explore:0.02 ~arms:arms3 ~seed:1L () in
  for i = 0 to 2 do
    let a = Bandit.select b ~bucket:"x" in
    Bandit.observe b ~bucket:"x" ~arm:a
      ~reward:(if a = i then if arms3.(a) = "b" then 0.9 else 0.1
               else if arms3.(a) = "b" then 0.9
               else 0.1)
  done;
  (* a wave of 4 unresolved selections: every one should go to the
     best arm, not rotate through the losers *)
  let wave = List.init 4 (fun _ -> Bandit.select b ~bucket:"x") in
  check "whole wave exploits" true (List.for_all (fun i -> i = 1) wave)

let test_bandit_seeded_determinism () =
  let run seed =
    let b = Bandit.create ~explore:0.02 ~arms:arms3 ~seed () in
    List.init 12 (fun k ->
        let i = Bandit.select b ~bucket:(if k mod 2 = 0 then "x" else "y") in
        Bandit.observe b
          ~bucket:(if k mod 2 = 0 then "x" else "y")
          ~arm:i ~reward:(0.1 *. float_of_int i);
        i)
  in
  check "same seed, same trace" true (run 42L = run 42L);
  check "buckets tracked" true
    (let b = Bandit.create ~arms:arms3 ~seed:0L () in
     ignore (Bandit.select b ~bucket:"p");
     ignore (Bandit.select b ~bucket:"q");
     Bandit.buckets b = [ "p"; "q" ])

(* ------------------------------------------------------------------ *)
(* Tuner                                                              *)
(* ------------------------------------------------------------------ *)

let test_tuner_modes () =
  check "off parses" true (Tuner.mode_of_string "off" = Some Tuner.Off);
  check "bandit parses" true
    (Tuner.mode_of_string "bandit" = Some (Tuner.Bandit 0L));
  check "fixed parses" true
    (Tuner.mode_of_string "fixed:lr-patience"
    = Some (Tuner.Fixed (Policy.Lr_step Policy.Lr_patience)));
  check "garbage rejected" true (Tuner.mode_of_string "fixed:nope" = None);
  let off = Tuner.create Tuner.Off in
  check "off has no hook" true (Tuner.pa_hook off = None);
  check "off adds no cache policy" true (Tuner.cache_policy_id off = None);
  check_str "off stats" "tune: off" (Tuner.stats_line off);
  let bandit = Tuner.create ~seed:9L (Tuner.Bandit 0L) in
  check "seed overrides" true (Tuner.mode bandit = Tuner.Bandit 9L);
  check "bandit cache policy" true
    (Tuner.cache_policy_id bandit = Some "bandit")

let test_tuner_off_bit_identical () =
  let d = design () in
  let plain = PA.optimize ~kind:PA.Lr d in
  let off = Tuner.create Tuner.Off in
  let r = PA.optimize ?tune:(Tuner.pa_hook off) ~kind:PA.Lr d in
  check "assignments identical" true (plain.PA.assignments = r.PA.assignments);
  check "reports identical" true (plain.PA.reports = r.PA.reports);
  check "objective identical" true (plain.PA.objective = r.PA.objective);
  check "no trace" true (Tuner.trace off = [])

let test_tuner_bandit_deterministic () =
  let d = design () in
  let solve j =
    let t = Tuner.create ~seed:5L (Tuner.Bandit 0L) in
    let r = PA.optimize ?tune:(Tuner.pa_hook t) ~kind:PA.Lr d ~j in
    (r, Tuner.trace t)
  in
  let r1, tr1 = solve 1 in
  let r1', tr1' = solve 1 in
  let r2, tr2 = solve 2 in
  check "same bytes across runs" true (r1.PA.assignments = r1'.PA.assignments);
  check "same trace across runs" true (tr1 = tr1');
  check "same bytes at -j2" true (r1.PA.assignments = r2.PA.assignments);
  check "same trace at -j2" true (tr1 = tr2);
  check "one trace entry per panel" true
    (List.length tr1 = List.length r1.PA.reports);
  check "trace ids are policies" true
    (List.for_all (fun (_, id) -> Policy.of_id id <> None) tr1)

let test_tuner_trace_replay () =
  let d = design () in
  let t = Tuner.create ~seed:3L (Tuner.Bandit 0L) in
  let tuned = PA.optimize ?tune:(Tuner.pa_hook t) ~kind:PA.Lr d in
  let replay =
    PA.optimize ~tune:(Tuner.replay_hook (Tuner.trace t)) ~kind:PA.Lr d
  in
  check "replay reproduces assignments" true
    (tuned.PA.assignments = replay.PA.assignments);
  check "replay reproduces objective" true
    (tuned.PA.objective = replay.PA.objective)

let test_tuner_fixed_applies () =
  let d = design () in
  let t = Tuner.create (Tuner.Fixed (Policy.Lr_step Policy.Lr_patience)) in
  let r = PA.optimize ?tune:(Tuner.pa_hook t) ~kind:PA.Lr d in
  PA.validate r;
  check "every panel traced under the fixed policy" true
    (List.length (Tuner.trace t) = List.length r.PA.reports
    && List.for_all (fun (_, id) -> id = "lr-patience") (Tuner.trace t));
  (* ordering/warm axes do not touch the PAO walk *)
  let ord = Tuner.create (Tuner.Fixed (Policy.Order Policy.Ord_area)) in
  check "order policy has no PA hook" true (Tuner.pa_hook ord = None);
  check "order maps" true
    (Tuner.negotiation_order ord = Router.Negotiation.Area);
  let warm = Tuner.create (Tuner.Fixed (Policy.Warm Policy.Warm_never)) in
  check "warm maps" true (Tuner.warm_policy warm = Some Eco.Engine.Warm_never)

let () =
  Alcotest.run "tune"
    [
      ( "policy",
        [
          Alcotest.test_case "id roundtrip" `Quick test_policy_ids;
          Alcotest.test_case "apply_lr" `Quick test_policy_apply;
        ] );
      ("features", [ Alcotest.test_case "extractor" `Quick test_features ]);
      ( "bandit",
        [
          Alcotest.test_case "explore then exploit" `Quick
            test_bandit_explores_then_exploits;
          Alcotest.test_case "pending pulls keep their mean" `Quick
            test_bandit_pending_not_zero_reward;
          Alcotest.test_case "seeded determinism" `Quick
            test_bandit_seeded_determinism;
        ] );
      ( "tuner",
        [
          Alcotest.test_case "modes" `Quick test_tuner_modes;
          Alcotest.test_case "off is bit-identical" `Quick
            test_tuner_off_bit_identical;
          Alcotest.test_case "bandit deterministic at any -j" `Quick
            test_tuner_bandit_deterministic;
          Alcotest.test_case "trace replay" `Quick test_tuner_trace_replay;
          Alcotest.test_case "fixed policies" `Quick test_tuner_fixed_applies;
        ] );
    ]
