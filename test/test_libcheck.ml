(* The library checker: generator validity, harness feasibility, the
   grade ladder, sweep determinism across -j, ranked-report ordering
   and the crash-safe report writes. *)

module I = Geometry.Interval
module Cell_lib = Workloads.Cell_lib
module Design = Netlist.Design
module Harness = Libcheck.Harness
module Check = Libcheck.Check
module Grade = Libcheck.Grade
module Report = Libcheck.Report

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let params = { Cell_lib.default_params with Cell_lib.cells = 6; seed = 9L }
let config = { Harness.default_config with Harness.seed = 9L }

(* ------------------------------------------------------------------ *)
(* Cell_lib                                                            *)
(* ------------------------------------------------------------------ *)

let test_cell_lib_deterministic () =
  check "same seed, same library" true
    (Cell_lib.generate params = Cell_lib.generate params);
  check "different seed, different library" true
    (Cell_lib.generate params
    <> Cell_lib.generate { params with Cell_lib.seed = 10L })

let test_cell_lib_valid () =
  let cells = Cell_lib.generate params in
  check_int "cell count" params.Cell_lib.cells (List.length cells);
  List.iter
    (fun (c : Cell_lib.cell) ->
      check "width in range" true
        (c.Cell_lib.width >= params.Cell_lib.min_width
        && c.Cell_lib.width <= params.Cell_lib.max_width);
      check "has pins" true (c.Cell_lib.pins <> []);
      check "pin cap" true
        (List.length c.Cell_lib.pins <= params.Cell_lib.max_pins);
      let offsets = List.map (fun p -> p.Cell_lib.offset) c.Cell_lib.pins in
      check "offsets ascending and distinct" true
        (List.sort_uniq compare offsets = offsets);
      List.iter
        (fun (p : Cell_lib.pin) ->
          check "offset on cell" true
            (p.Cell_lib.offset >= 0 && p.Cell_lib.offset < c.Cell_lib.width);
          check "tracks inside the row" true
            (I.lo p.Cell_lib.tracks >= 1
            && I.hi p.Cell_lib.tracks <= params.Cell_lib.row_height - 2))
        c.Cell_lib.pins)
    cells

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

(* blockage congestion must never cover a grid a pin occupies — that
   is the feasibility guarantee the whole checker leans on *)
let test_harness_never_blocks_pins () =
  let cells = Cell_lib.generate params in
  List.iter
    (fun cell ->
      List.iteri
        (fun level _ ->
          let d = Harness.design_for config cell ~level in
          Array.iter
            (fun (p : Netlist.Pin.t) ->
              List.iter
                (fun (b : Netlist.Blockage.t) ->
                  check "blockage misses every pin grid" false
                    (I.contains b.Netlist.Blockage.span p.Netlist.Pin.x
                    && I.contains p.Netlist.Pin.tracks b.Netlist.Blockage.track))
                (Design.blockages d))
            (Design.pins d))
        config.Harness.densities)
    cells

let test_harness_deterministic () =
  let cell = List.hd (Cell_lib.generate params) in
  let d1 = Harness.design_for config cell ~level:2 in
  let d2 = Harness.design_for config cell ~level:2 in
  check "same die twice" true
    (Design.blockages d1 = Design.blockages d2
    && Design.pins d1 = Design.pins d2)

let test_harness_density_scales () =
  let cell = List.hd (Cell_lib.generate params) in
  let grids level =
    let d = Harness.design_for config cell ~level in
    List.fold_left
      (fun n (b : Netlist.Blockage.t) -> n + I.length b.Netlist.Blockage.span)
      0 (Design.blockages d)
  in
  check_int "density 0 is a clean die" 0 (grids 0);
  check "more density, more blocked grids" true (grids 3 > grids 1)

(* ------------------------------------------------------------------ *)
(* Grades                                                              *)
(* ------------------------------------------------------------------ *)

let test_grade_ladder () =
  check_str "fail" "F" (Grade.to_string (Grade.of_pass_level ~levels:4 (-1)));
  check_str "isolation only" "D" (Grade.to_string (Grade.of_pass_level ~levels:4 0));
  check_str "one density" "C" (Grade.to_string (Grade.of_pass_level ~levels:4 1));
  check_str "next" "B" (Grade.to_string (Grade.of_pass_level ~levels:4 2));
  check_str "all levels" "A" (Grade.to_string (Grade.of_pass_level ~levels:4 3));
  check "worst picks the lower grade" true
    (Grade.worst Grade.A Grade.C = Grade.C
    && Grade.worst Grade.F Grade.D = Grade.F)

(* ------------------------------------------------------------------ *)
(* Check                                                               *)
(* ------------------------------------------------------------------ *)

let test_check_cell_certified () =
  let cells = Cell_lib.generate params in
  List.iter
    (fun cell ->
      let r = Check.check_cell config cell in
      check "audit-certified at every level" true r.Check.certified;
      check "no rejection reason" true (r.Check.uncertified = None);
      check_int "one result per pin"
        (List.length cell.Cell_lib.pins)
        (List.length r.Check.pins);
      List.iter
        (fun (p : Check.pin_result) ->
          check "pins never lose their minimum" true
            (Array.for_all (fun n -> n >= 1) p.Check.access_points);
          check "candidates found in isolation" true (p.Check.candidates >= 1);
          check "pass level in range" true
            (p.Check.pass_level >= -1
            && p.Check.pass_level < List.length config.Harness.densities))
        r.Check.pins)
    cells

(* ------------------------------------------------------------------ *)
(* Sweep + Report                                                      *)
(* ------------------------------------------------------------------ *)

let report_of ~j =
  let cells = Cell_lib.generate params in
  let results = Libcheck.Sweep.run ~j config cells in
  Report.make ~lib_name:"t" config results

let test_sweep_parallel_identical () =
  let r1 = report_of ~j:1 in
  let r4 = report_of ~j:4 in
  check "parallel sweep returns sequential results" true
    (r1.Report.cells = r4.Report.cells);
  check_str "report bytes identical"
    (Obs.Json.to_string_pretty (Report.to_json r1))
    (Obs.Json.to_string_pretty (Report.to_json r4))

let test_report_ranked_worst_first () =
  let r = report_of ~j:1 in
  let rec non_decreasing = function
    | (a : Check.cell_result) :: (b :: _ as rest) ->
      Grade.rank a.Check.worst <= Grade.rank b.Check.worst
      && non_decreasing rest
    | _ -> true
  in
  check "cells ranked worst-first" true (non_decreasing r.Report.cells);
  List.iter
    (fun (c : Check.cell_result) ->
      let rec pins_sorted = function
        | (a : Check.pin_result) :: (b :: _ as rest) ->
          Grade.rank a.Check.grade <= Grade.rank b.Check.grade
          && pins_sorted rest
        | _ -> true
      in
      check "pins ranked worst-first" true (pins_sorted c.Check.pins))
    r.Report.cells

let test_report_histogram_sums () =
  let r = report_of ~j:1 in
  let total =
    List.fold_left (fun n (_, c) -> n + c) 0 (Report.grade_histogram r)
  in
  check_int "histogram covers every pin"
    (Cell_lib.num_pins (Cell_lib.generate params))
    total

(* the satellite regression: a crash mid-write (fault tripped between
   open and commit) must leave the previous report untouched *)
let test_report_write_crash_safe () =
  let path = Filename.temp_file "libcheck-report" ".json" in
  let oc = open_out path in
  output_string oc "OLD";
  close_out oc;
  let r = report_of ~j:1 in
  (try
     Pinaccess.Fault.with_hook
       (fun p -> if p = Pinaccess.Fault.Report_write then failwith "crash")
       (fun () -> Report.save_json path r);
     Alcotest.fail "fault hook did not fire"
   with Failure _ -> ());
  let ic = open_in path in
  let survived = input_line ic in
  close_in ic;
  check_str "previous report intact" "OLD" survived;
  (* and the happy path replaces it atomically *)
  Report.save_json path r;
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  check_str "new report committed" "{" first;
  Sys.remove path

let () =
  Alcotest.run "libcheck"
    [
      ( "cell_lib",
        [
          Alcotest.test_case "deterministic" `Quick test_cell_lib_deterministic;
          Alcotest.test_case "valid cells" `Quick test_cell_lib_valid;
        ] );
      ( "harness",
        [
          Alcotest.test_case "pins never blocked" `Quick
            test_harness_never_blocks_pins;
          Alcotest.test_case "deterministic dies" `Quick
            test_harness_deterministic;
          Alcotest.test_case "density scales" `Quick test_harness_density_scales;
        ] );
      ("grades", [ Alcotest.test_case "ladder" `Quick test_grade_ladder ]);
      ( "check",
        [
          Alcotest.test_case "every cell certified" `Quick
            test_check_cell_certified;
        ] );
      ( "sweep+report",
        [
          Alcotest.test_case "parallel identical" `Quick
            test_sweep_parallel_identical;
          Alcotest.test_case "ranked worst-first" `Quick
            test_report_ranked_worst_first;
          Alcotest.test_case "histogram sums" `Quick test_report_histogram_sums;
          Alcotest.test_case "crash-safe writes" `Quick
            test_report_write_crash_safe;
        ] );
    ]
