(* The parallel executor: joins, chunked scheduling, deterministic
   error propagation, and the headline PR-3 guarantee — PAO and the
   full CPR flow produce bit-identical results at any [-j]. *)

module PA = Pinaccess.Pin_access
module Eval = Metrics.Eval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pool mechanics                                                     *)
(* ------------------------------------------------------------------ *)

let test_map_joins_all () =
  let xs = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun i -> (i * 7) + 1) xs in
  Exec.with_pool ~domains:4 (fun pool ->
      let got = Exec.map pool (fun i -> (i * 7) + 1) xs in
      check "map equals Array.map" true (got = expected);
      (* the pool is reusable across calls *)
      let again = Exec.map pool (fun i -> i - 3) xs in
      check "second map on same pool" true
        (again = Array.map (fun i -> i - 3) xs))

let test_mapi_indices () =
  let xs = Array.make 50 "x" in
  Exec.with_pool ~domains:3 (fun pool ->
      let got = Exec.mapi pool (fun i s -> Printf.sprintf "%s%d" s i) xs in
      check "mapi passes the element index" true
        (got = Array.init 50 (fun i -> Printf.sprintf "x%d" i)))

let test_sequential_executor () =
  let xs = Array.init 17 (fun i -> i) in
  let got = Exec.map Exec.sequential (fun i -> i * i) xs in
  check "sequential map" true (got = Array.map (fun i -> i * i) xs);
  check_int "sequential reports one domain" 1 (Exec.domains Exec.sequential)

(* Uneven sizes: every index must be computed exactly once, whatever
   the chunking does at the ragged end. *)
let test_uneven_chunks () =
  List.iter
    (fun n ->
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Exec.with_pool ~domains:4 (fun pool ->
          let got =
            Exec.mapi pool
              (fun i () ->
                Atomic.incr hits.(i);
                i)
              (Array.make n ())
          in
          check "results in order" true (got = Array.init n (fun i -> i)));
      Array.iteri
        (fun i h ->
          check_int (Printf.sprintf "n=%d index %d computed once" n i) 1
            (Atomic.get h))
        hits)
    [ 1; 2; 3; 7; 23; 64; 101 ]

(* A worker exception re-raises at the join, and when several tasks
   fail the lowest index wins — deterministic whatever the domain
   interleaving was. *)
let test_exception_propagation () =
  let boom i =
    Pinaccess.Cpr_error.Error
      (Pinaccess.Cpr_error.Solver_failure
         { solver = string_of_int i; reason = "boom" })
  in
  Exec.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "lowest failing index wins" (boom 37) (fun () ->
          ignore
            (Exec.mapi pool
               (fun i () -> if i = 37 || i = 73 then raise (boom i) else i)
               (Array.make 100 ()))))

(* with_pool must shut the domains down even when the body raises. *)
let test_with_pool_cleanup () =
  (try
     Exec.with_pool ~domains:2 (fun _ -> failwith "body blew up")
   with Failure _ -> ());
  (* a fresh pool still works afterwards *)
  Exec.with_pool ~domains:2 (fun pool ->
      check "pool after failed body" true
        (Exec.map pool (fun i -> i + 1) [| 1; 2; 3 |] = [| 2; 3; 4 |]))

(* ------------------------------------------------------------------ *)
(* Work-stealing deque                                                *)
(* ------------------------------------------------------------------ *)

(* With a single thread the Chase–Lev deque must behave exactly like a
   model double-ended list: push/pop LIFO at the bottom, steal FIFO at
   the top, and no [Retry] (nobody to lose a race against). *)
let prop_deque_matches_model =
  let open QCheck in
  let op_gen = Gen.oneofl [ `Push; `Pop; `Steal ] in
  let ops = make ~print:(fun l -> string_of_int (List.length l))
      (Gen.list_size (Gen.int_range 1 200) op_gen) in
  Test.make ~name:"deque matches sequential model" ~count:200 ops (fun ops ->
      let d = Exec.Deque.create ~capacity:256 in
      let model = ref [] (* top is the head, bottom the tail *) in
      let next = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Push ->
            Exec.Deque.push d !next;
            model := !model @ [ !next ];
            incr next
          | `Pop -> (
            let got = Exec.Deque.pop d in
            match (got, List.rev !model) with
            | Some v, last :: rest ->
              assert (v = last);
              model := List.rev rest
            | None, [] -> ()
            | _ -> assert false)
          | `Steal -> (
            match (Exec.Deque.steal d, !model) with
            | Exec.Deque.Stolen v, first :: rest ->
              assert (v = first);
              model := rest
            | Exec.Deque.Empty, [] -> ()
            | Exec.Deque.Retry, _ -> assert false
            | _ -> assert false))
        ops;
      (* drain: everything still queued comes out FIFO from the top *)
      List.iter
        (fun expected ->
          match Exec.Deque.steal d with
          | Exec.Deque.Stolen v -> assert (v = expected)
          | _ -> assert false)
        !model;
      Exec.Deque.steal d = Exec.Deque.Empty)

(* The concurrent contract: whatever the interleaving of the owner's
   pushes/pops with thief domains stealing, every pushed value is
   consumed exactly once — none lost, none duplicated. *)
let prop_deque_no_lost_tasks =
  let open QCheck in
  let cfg = make
      ~print:(fun (n, thieves) -> Printf.sprintf "n=%d thieves=%d" n thieves)
      Gen.(pair (int_range 64 2000) (int_range 1 3)) in
  Test.make ~name:"no task lost or duplicated under steals" ~count:12 cfg
    (fun (n, thieves) ->
      let d = Exec.Deque.create ~capacity:n in
      let done_ = Atomic.make false in
      let thief () =
        let mine = ref [] in
        let rec loop () =
          match Exec.Deque.steal d with
          | Exec.Deque.Stolen v ->
            mine := v :: !mine;
            loop ()
          | Exec.Deque.Retry ->
            Domain.cpu_relax ();
            loop ()
          | Exec.Deque.Empty ->
            if Atomic.get done_ then !mine
            else begin
              Domain.cpu_relax ();
              loop ()
            end
        in
        loop ()
      in
      let thieves = List.init thieves (fun _ -> Domain.spawn thief) in
      let owner = ref [] in
      (* interleave pushes with occasional pops so the owner races the
         thieves at both ends, then drain LIFO *)
      for i = 0 to n - 1 do
        Exec.Deque.push d i;
        if i land 7 = 0 then
          match Exec.Deque.pop d with
          | Some v -> owner := v :: !owner
          | None -> ()
      done;
      let rec drain () =
        match Exec.Deque.pop d with
        | Some v ->
          owner := v :: !owner;
          drain ()
        | None -> ()
      in
      drain ();
      Atomic.set done_ true;
      let stolen = List.concat_map Domain.join thieves in
      let all = List.sort compare (!owner @ stolen) in
      all = List.init n (fun i -> i))

let test_deque_capacity () =
  let d = Exec.Deque.create ~capacity:4 in
  for i = 0 to 3 do
    Exec.Deque.push d i
  done;
  check "push past capacity raises" true
    (match Exec.Deque.push d 4 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Scheduler telemetry                                                *)
(* ------------------------------------------------------------------ *)

let test_stats_accounting () =
  Exec.with_pool ~domains:3 (fun pool ->
      let n = 100 in
      ignore (Exec.map pool (fun i -> i * 2) (Array.init n (fun i -> i)));
      let s = Exec.stats pool in
      check_int "one job fanned out" 1 s.Exec.jobs;
      check_int "every task counted" n s.Exec.tasks;
      (* chunk = max 1 (100 / (3 * 8)) = 4, so 25 chunks; each is
         either popped by its owner or stolen, exactly once *)
      check_int "chunks + steals covers the job" 25
        (s.Exec.chunks + s.Exec.chunks_stolen);
      check_int "depth histogram counts one entry per steal"
        s.Exec.chunks_stolen
        (Array.fold_left ( + ) 0 s.Exec.queue_depth);
      (* a second job accumulates *)
      ignore (Exec.map pool (fun i -> i) (Array.init n (fun i -> i)));
      let s2 = Exec.stats pool in
      check_int "jobs accumulate" 2 s2.Exec.jobs;
      check_int "tasks accumulate" (2 * n) s2.Exec.tasks)

let test_stats_sequential_zero () =
  ignore (Exec.map Exec.sequential (fun i -> i) (Array.init 10 (fun i -> i)));
  let s = Exec.stats Exec.sequential in
  check "sequential stats all zero" true
    (s.Exec.jobs = 0 && s.Exec.tasks = 0 && s.Exec.chunks = 0
   && s.Exec.chunks_stolen = 0)

(* ------------------------------------------------------------------ *)
(* Domain-local observability buffers                                 *)
(* ------------------------------------------------------------------ *)

let test_metrics_buffered_merge () =
  let c = Obs.Metrics.counter "test_exec.buffered" in
  let before = Obs.Metrics.value c in
  let (), buf =
    Obs.Metrics.buffered (fun () ->
        Obs.Metrics.add c 5;
        (* redirection is active: the global counter is untouched *)
        check_int "buffered add invisible" before (Obs.Metrics.value c))
  in
  check_int "still invisible before flush" before (Obs.Metrics.value c);
  Obs.Metrics.flush buf;
  check_int "flush lands the increments" (before + 5) (Obs.Metrics.value c)

(* ------------------------------------------------------------------ *)
(* Determinism: parallel == sequential, bit for bit                   *)
(* ------------------------------------------------------------------ *)

let small_design () =
  Workloads.Suite.design ~scale:0.12 (Workloads.Suite.find "ecc")

let test_pao_determinism () =
  let design = small_design () in
  let seq = PA.optimize ~kind:PA.Lr design in
  let par = PA.optimize ~kind:PA.Lr ~j:4 design in
  check "objective identical" true (seq.PA.objective = par.PA.objective);
  check "panel reports identical" true (seq.PA.reports = par.PA.reports);
  check "assignments identical" true (seq.PA.assignments = par.PA.assignments)

(* Streamed PAO builds each panel problem at solve time instead of
   holding the whole problem list resident; with an unlimited budget it
   must reproduce the resident path byte for byte, at any [-j]. *)
let test_streamed_pao_identity () =
  let design = small_design () in
  let resident = PA.optimize ~kind:PA.Lr design in
  let streamed = PA.optimize ~kind:PA.Lr ~stream:true design in
  let streamed_par = PA.optimize ~kind:PA.Lr ~stream:true ~j:4 design in
  check "streamed objective identical" true
    (resident.PA.objective = streamed.PA.objective);
  check "streamed reports identical" true
    (resident.PA.reports = streamed.PA.reports);
  check "streamed assignments identical" true
    (resident.PA.assignments = streamed.PA.assignments);
  check "streamed -j4 reports identical" true
    (resident.PA.reports = streamed_par.PA.reports);
  check "streamed -j4 assignments identical" true
    (resident.PA.assignments = streamed_par.PA.assignments)

(* Stage-2 coloring: on a design congested enough to need rip-up
   rounds, the pooled flow must still reproduce the sequential routing
   bit for bit — same routes, same iteration count, same verdicts. *)
let test_ripup_coloring_determinism () =
  let design = Workloads.Suite.design ~scale:0.18 (Workloads.Suite.find "ctl") in
  let seq = Router.Cpr.run design in
  let par =
    Router.Cpr.run
      ~config:{ Router.Cpr.default_config with jobs = 4; parallel_init = true }
      design
  in
  check "rip-up rounds actually ran" true
    (seq.Router.Flow.ripup_iterations >= 1);
  check_int "same rip-up iterations" seq.Router.Flow.ripup_iterations
    par.Router.Flow.ripup_iterations;
  check_int "same reroutes" seq.Router.Flow.total_reroutes
    par.Router.Flow.total_reroutes;
  check "routes bit-identical" true
    (seq.Router.Flow.routes = par.Router.Flow.routes);
  check "clean verdicts identical" true
    (seq.Router.Flow.clean = par.Router.Flow.clean)

let test_flow_determinism () =
  let design = small_design () in
  let seq = Eval.of_flow (Router.Cpr.run design) in
  let par =
    Eval.of_flow
      (Router.Cpr.run
         ~config:
           { Router.Cpr.default_config with jobs = 4; parallel_init = true }
         design)
  in
  check "routability identical" true
    (seq.Eval.routability = par.Eval.routability);
  check_int "via count identical" seq.Eval.via_count par.Eval.via_count;
  check_int "wirelength identical" seq.Eval.wirelength par.Eval.wirelength

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map joins all tasks" `Quick test_map_joins_all;
          Alcotest.test_case "mapi indices" `Quick test_mapi_indices;
          Alcotest.test_case "sequential executor" `Quick
            test_sequential_executor;
          Alcotest.test_case "uneven chunk coverage" `Quick test_uneven_chunks;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "with_pool cleanup" `Quick test_with_pool_cleanup;
        ] );
      ( "deque",
        [
          QCheck_alcotest.to_alcotest prop_deque_matches_model;
          QCheck_alcotest.to_alcotest prop_deque_no_lost_tasks;
          Alcotest.test_case "capacity is hard" `Quick test_deque_capacity;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
          Alcotest.test_case "sequential stats are zero" `Quick
            test_stats_sequential_zero;
        ] );
      ( "observability",
        [
          Alcotest.test_case "metrics buffered merge" `Quick
            test_metrics_buffered_merge;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pao j=4 equals j=1" `Quick test_pao_determinism;
          Alcotest.test_case "streamed pao equals resident" `Quick
            test_streamed_pao_identity;
          Alcotest.test_case "rip-up coloring equals sequential" `Quick
            test_ripup_coloring_determinism;
          Alcotest.test_case "flow parallel-init equals sequential" `Quick
            test_flow_determinism;
        ] );
    ]
