(* The parallel executor: joins, chunked scheduling, deterministic
   error propagation, and the headline PR-3 guarantee — PAO and the
   full CPR flow produce bit-identical results at any [-j]. *)

module PA = Pinaccess.Pin_access
module Eval = Metrics.Eval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pool mechanics                                                     *)
(* ------------------------------------------------------------------ *)

let test_map_joins_all () =
  let xs = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun i -> (i * 7) + 1) xs in
  Exec.with_pool ~domains:4 (fun pool ->
      let got = Exec.map pool (fun i -> (i * 7) + 1) xs in
      check "map equals Array.map" true (got = expected);
      (* the pool is reusable across calls *)
      let again = Exec.map pool (fun i -> i - 3) xs in
      check "second map on same pool" true
        (again = Array.map (fun i -> i - 3) xs))

let test_mapi_indices () =
  let xs = Array.make 50 "x" in
  Exec.with_pool ~domains:3 (fun pool ->
      let got = Exec.mapi pool (fun i s -> Printf.sprintf "%s%d" s i) xs in
      check "mapi passes the element index" true
        (got = Array.init 50 (fun i -> Printf.sprintf "x%d" i)))

let test_sequential_executor () =
  let xs = Array.init 17 (fun i -> i) in
  let got = Exec.map Exec.sequential (fun i -> i * i) xs in
  check "sequential map" true (got = Array.map (fun i -> i * i) xs);
  check_int "sequential reports one domain" 1 (Exec.domains Exec.sequential)

(* Uneven sizes: every index must be computed exactly once, whatever
   the chunking does at the ragged end. *)
let test_uneven_chunks () =
  List.iter
    (fun n ->
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Exec.with_pool ~domains:4 (fun pool ->
          let got =
            Exec.mapi pool
              (fun i () ->
                Atomic.incr hits.(i);
                i)
              (Array.make n ())
          in
          check "results in order" true (got = Array.init n (fun i -> i)));
      Array.iteri
        (fun i h ->
          check_int (Printf.sprintf "n=%d index %d computed once" n i) 1
            (Atomic.get h))
        hits)
    [ 1; 2; 3; 7; 23; 64; 101 ]

(* A worker exception re-raises at the join, and when several tasks
   fail the lowest index wins — deterministic whatever the domain
   interleaving was. *)
let test_exception_propagation () =
  let boom i =
    Pinaccess.Cpr_error.Error
      (Pinaccess.Cpr_error.Solver_failure
         { solver = string_of_int i; reason = "boom" })
  in
  Exec.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "lowest failing index wins" (boom 37) (fun () ->
          ignore
            (Exec.mapi pool
               (fun i () -> if i = 37 || i = 73 then raise (boom i) else i)
               (Array.make 100 ()))))

(* with_pool must shut the domains down even when the body raises. *)
let test_with_pool_cleanup () =
  (try
     Exec.with_pool ~domains:2 (fun _ -> failwith "body blew up")
   with Failure _ -> ());
  (* a fresh pool still works afterwards *)
  Exec.with_pool ~domains:2 (fun pool ->
      check "pool after failed body" true
        (Exec.map pool (fun i -> i + 1) [| 1; 2; 3 |] = [| 2; 3; 4 |]))

(* ------------------------------------------------------------------ *)
(* Domain-local observability buffers                                 *)
(* ------------------------------------------------------------------ *)

let test_metrics_buffered_merge () =
  let c = Obs.Metrics.counter "test_exec.buffered" in
  let before = Obs.Metrics.value c in
  let (), buf =
    Obs.Metrics.buffered (fun () ->
        Obs.Metrics.add c 5;
        (* redirection is active: the global counter is untouched *)
        check_int "buffered add invisible" before (Obs.Metrics.value c))
  in
  check_int "still invisible before flush" before (Obs.Metrics.value c);
  Obs.Metrics.flush buf;
  check_int "flush lands the increments" (before + 5) (Obs.Metrics.value c)

(* ------------------------------------------------------------------ *)
(* Determinism: parallel == sequential, bit for bit                   *)
(* ------------------------------------------------------------------ *)

let small_design () =
  Workloads.Suite.design ~scale:0.12 (Workloads.Suite.find "ecc")

let test_pao_determinism () =
  let design = small_design () in
  let seq = PA.optimize ~kind:PA.Lr design in
  let par = PA.optimize ~kind:PA.Lr ~j:4 design in
  check "objective identical" true (seq.PA.objective = par.PA.objective);
  check "panel reports identical" true (seq.PA.reports = par.PA.reports);
  check "assignments identical" true (seq.PA.assignments = par.PA.assignments)

let test_flow_determinism () =
  let design = small_design () in
  let seq = Eval.of_flow (Router.Cpr.run design) in
  let par =
    Eval.of_flow
      (Router.Cpr.run
         ~config:
           { Router.Cpr.default_config with jobs = 4; parallel_init = true }
         design)
  in
  check "routability identical" true
    (seq.Eval.routability = par.Eval.routability);
  check_int "via count identical" seq.Eval.via_count par.Eval.via_count;
  check_int "wirelength identical" seq.Eval.wirelength par.Eval.wirelength

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map joins all tasks" `Quick test_map_joins_all;
          Alcotest.test_case "mapi indices" `Quick test_mapi_indices;
          Alcotest.test_case "sequential executor" `Quick
            test_sequential_executor;
          Alcotest.test_case "uneven chunk coverage" `Quick test_uneven_chunks;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "with_pool cleanup" `Quick test_with_pool_cleanup;
        ] );
      ( "observability",
        [
          Alcotest.test_case "metrics buffered merge" `Quick
            test_metrics_buffered_merge;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pao j=4 equals j=1" `Quick test_pao_determinism;
          Alcotest.test_case "flow parallel-init equals sequential" `Quick
            test_flow_determinism;
        ] );
    ]
