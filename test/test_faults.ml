(* Fault-injection tests for the degradation ladder (ILP → LR → minimum
   intervals) and the budget plumbing: each tier is killed
   deterministically and the pipeline must still return a
   [Pin_access.validate]-clean result within its budget, reporting the
   affected panels as degraded with the tier that actually served
   them. *)

module PA = Pinaccess.Pin_access
module Budget = Pinaccess.Budget
module Fault = Pinaccess.Fault
module Cpr_error = Pinaccess.Cpr_error

let check = Alcotest.(check bool)

let design ~nets ~width ~height ~seed =
  Workloads.Generator.generate
    (Workloads.Generator.with_size ~name:"faults" ~nets ~width ~height
       ~seed:(Int64.of_int seed) ())

let small () = design ~nets:60 ~width:60 ~height:30 ~seed:3

let all_served tier (pao : PA.t) =
  List.for_all (fun (r : PA.panel_report) -> r.PA.served_by = tier) pao.PA.reports

let test_ilp_falls_back_to_lr () =
  let d = small () in
  let pao =
    Fault.with_failures [ Fault.Ilp ] (fun () -> PA.optimize ~kind:PA.Ilp d)
  in
  PA.validate pao;
  check "all panels served by LR" true (all_served PA.Tier_lr pao);
  check "result flagged degraded" true pao.PA.degraded;
  check "every report degraded" true
    (List.for_all (fun (r : PA.panel_report) -> r.PA.degraded) pao.PA.reports)

let test_both_tiers_fall_back_to_minimum () =
  let d = small () in
  let pao =
    Fault.with_failures [ Fault.Ilp; Fault.Lr ] (fun () ->
        PA.optimize ~kind:PA.Ilp d)
  in
  PA.validate pao;
  check "all panels served by minimum" true (all_served PA.Tier_minimum pao);
  check "degraded" true pao.PA.degraded

let test_lr_fault_on_lr_kind () =
  let d = small () in
  let pao =
    Fault.with_failures [ Fault.Lr ] (fun () -> PA.optimize ~kind:PA.Lr d)
  in
  PA.validate pao;
  check "minimum serves" true (all_served PA.Tier_minimum pao);
  check "degraded" true pao.PA.degraded

let test_no_fault_not_degraded () =
  let d = small () in
  let pao = PA.optimize ~kind:PA.Lr d in
  PA.validate pao;
  check "not degraded" false pao.PA.degraded;
  check "served by LR" true (all_served PA.Tier_lr pao)

(* The acceptance scenario: ILP forcibly failed AND the LR rescue
   running out of work units mid-run.  The pipeline must still return a
   complete, conflict-free assignment and mark the panels degraded with
   the tier that served them. *)
let test_ilp_fault_and_tiny_budget () =
  let d = design ~nets:120 ~width:80 ~height:40 ~seed:7 in
  let budget = Budget.start ~work_units:3 () in
  let pao =
    Fault.with_failures [ Fault.Ilp ] (fun () ->
        PA.optimize ~budget ~kind:PA.Ilp d)
  in
  PA.validate pao;
  check "degraded" true pao.PA.degraded;
  List.iter
    (fun (r : PA.panel_report) ->
      check "not served by the dead ILP tier" true (r.PA.served_by <> PA.Tier_ilp);
      check "degraded panels say who served them" true r.PA.degraded)
    pao.PA.reports

let test_exhausted_budget_yields_minimum () =
  let d = small () in
  let budget = Budget.start ~work_units:1 () in
  Budget.spend budget 1;
  check "pre-exhausted" true (Budget.exhausted budget);
  let pao = PA.optimize ~budget ~kind:PA.Lr d in
  PA.validate pao;
  check "minimum serves everything" true (all_served PA.Tier_minimum pao);
  check "degraded" true pao.PA.degraded

let test_deadline_respected () =
  let d = design ~nets:200 ~width:120 ~height:60 ~seed:11 in
  let seconds = 0.5 in
  let budget = Budget.start ~seconds () in
  let started = Pinaccess.Unix_time.now () in
  let pao = PA.optimize ~budget ~kind:PA.Ilp d in
  let took = Pinaccess.Unix_time.now () -. started in
  PA.validate pao;
  (* generous slack: the point is "returns promptly", not a tight RT
     guarantee — each panel returns its best-so-far shortly after the
     shared deadline passes *)
  check "returned near the deadline" true (took < (seconds *. 10.0) +. 5.0)

let test_flow_with_exhausted_budget () =
  let d = small () in
  let budget = Budget.start ~work_units:1 () in
  Budget.spend budget 1;
  let flow = Router.Cpr.run ~budget d in
  check "flow degraded" true (Router.Flow.degraded flow);
  check "degraded panels counted" true (Metrics.Eval.degraded_panels flow > 0);
  (* routes that do exist are still short-free and well-formed *)
  check "clean flags sized" true
    (Array.length flow.Router.Flow.clean
    = Array.length (Netlist.Design.nets d))

let test_flow_fault_end_to_end () =
  let d = small () in
  let flow =
    Fault.with_failures [ Fault.Ilp ] (fun () ->
        let config =
          { Router.Cpr.default_config with Router.Cpr.pao_kind = PA.Ilp }
        in
        Router.Cpr.run ~config d)
  in
  check "flow degraded" true (Router.Flow.degraded flow);
  (match flow.Router.Flow.pao with
  | Some pao -> PA.validate pao
  | None -> Alcotest.fail "cpr flow must carry a PAO result");
  let s = Metrics.Eval.of_flow flow in
  check "summary counts degraded panels" true (s.Metrics.Eval.degraded_panels > 0);
  check "still routes nets" true (Router.Flow.routed_count flow > 0)

let test_fault_hook_restored () =
  (try
     Fault.with_failures [ Fault.Ilp ] (fun () ->
         Fault.trip Fault.Ilp)
   with Cpr_error.Error _ -> ());
  (* outside with_failures the hook must be inert again *)
  Fault.trip Fault.Ilp;
  Fault.trip Fault.Lr;
  check "hook restored" true true

let test_negotiation_budget_returns () =
  let d = design ~nets:100 ~width:80 ~height:40 ~seed:5 in
  let budget = Budget.start ~work_units:50 () in
  let flow = Router.Baseline_ncr.run ~budget d in
  check "returns a flow" true
    (Array.length flow.Router.Flow.routes
    = Array.length (Netlist.Design.nets d));
  check "ncr flow never PAO-degraded" false (Router.Flow.degraded flow)

let () =
  Alcotest.run "faults"
    [
      ( "ladder",
        [
          Alcotest.test_case "ILP fault -> LR serves" `Quick
            test_ilp_falls_back_to_lr;
          Alcotest.test_case "ILP+LR fault -> minimum serves" `Quick
            test_both_tiers_fall_back_to_minimum;
          Alcotest.test_case "LR fault -> minimum serves" `Quick
            test_lr_fault_on_lr_kind;
          Alcotest.test_case "no fault -> not degraded" `Quick
            test_no_fault_not_degraded;
          Alcotest.test_case "hook restored after with_failures" `Quick
            test_fault_hook_restored;
        ] );
      ( "budget",
        [
          Alcotest.test_case "ILP fault + tiny budget" `Quick
            test_ilp_fault_and_tiny_budget;
          Alcotest.test_case "exhausted budget -> minimum tier" `Quick
            test_exhausted_budget_yields_minimum;
          Alcotest.test_case "deadline respected" `Quick test_deadline_respected;
          Alcotest.test_case "flow with exhausted budget" `Quick
            test_flow_with_exhausted_budget;
          Alcotest.test_case "negotiation under work budget" `Quick
            test_negotiation_budget_returns;
          Alcotest.test_case "flow fault end to end" `Quick
            test_flow_fault_end_to_end;
        ] );
    ]
