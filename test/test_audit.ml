(* The audit layer must accept everything the solvers legitimately
   produce and reject each seeded corruption with the right typed
   reason — tested by hand-tampering good certificates one invariant at
   a time. *)

module I = Geometry.Interval
module B = Netlist.Builder
module AI = Pinaccess.Access_interval
module P = Pinaccess.Problem
module LR = Pinaccess.Lagrangian
module Sol = Pinaccess.Solution
module PA = Pinaccess.Pin_access

let check = Alcotest.(check bool)
let cfg = Pinaccess.Interval_gen.default_config

let fig3_design () =
  B.design ~width:20 ~height:10
    ~nets:
      [
        ("a", [ B.pin_span 6 ~lo:2 ~hi:4; B.pin_at 2 7; B.pin_at 17 6 ]);
        ("b", [ B.pin_at 9 3; B.pin_at 9 8 ]);
        ("c", [ B.pin_at 3 2; B.pin_at 13 2 ]);
        ("d", [ B.pin_at 14 3; B.pin_at 15 8 ]);
      ]
    ()

(* a known-good certificate: the LR solution on fig3 panel 0, carrying
   the solver-independent upper bound *)
let good_certificate () =
  let problem = P.build_panel cfg (fig3_design ()) ~panel:0 in
  let r = LR.solve problem in
  check "fixture is conflict-free" true (Sol.is_conflict_free r.LR.solution);
  Audit.of_solution ~dual_bound:(Audit.upper_bound problem) r.LR.solution

let reject name cert expected =
  match Audit.certify cert with
  | Ok () -> Alcotest.failf "%s: corrupt certificate accepted" name
  | Error r ->
    check name true (expected r);
    (* the reason must render, and distinctly from a clean accept *)
    check (name ^ " printable") true (String.length (Audit.reason_to_string r) > 0)

let test_good_accepted () =
  match Audit.certify (good_certificate ()) with
  | Ok () -> ()
  | Error r -> Alcotest.failf "good certificate rejected: %s" (Audit.reason_to_string r)

let test_duplicate_pin () =
  let cert = good_certificate () in
  let entry = List.hd cert.Audit.assignment in
  reject "duplicate pin"
    { cert with Audit.assignment = entry :: cert.Audit.assignment }
    (function Audit.Duplicate_pin p -> p = fst entry | _ -> false)

let test_uncovered_pin () =
  let cert = good_certificate () in
  let victim, iv = List.hd cert.Audit.assignment in
  (* same net, wrong track: geometry no longer covers the pin *)
  let tampered = { iv with AI.track = iv.AI.track + 1 } in
  let assignment =
    List.map
      (fun ((p, _) as e) -> if p = victim then (p, tampered) else e)
      cert.Audit.assignment
  in
  reject "uncovered pin"
    { cert with Audit.assignment }
    (function Audit.Uncovered_pin { pin; _ } -> pin = victim | _ -> false)

let test_overlap_conflict () =
  (* two 2-pin nets sharing track 3; stretch each left pin's interval
     across the other net's span so the pair overlaps on [6, 12] *)
  let d =
    B.design ~width:20 ~height:10
      ~nets:
        [
          ("a", [ B.pin_at 2 3; B.pin_at 12 3 ]);
          ("b", [ B.pin_at 6 3; B.pin_at 16 3 ]);
        ]
      ()
  in
  let problem = P.build_panel cfg d ~panel:0 in
  let stretch pin_id net lo hi =
    AI.make ~id:0 ~net ~pins:[ pin_id ] ~track:3 ~span:(I.make ~lo ~hi)
      ~kind:AI.Regular
  in
  let assignment =
    Array.to_list problem.P.pin_ids
    |> List.map (fun pin ->
           let slot = P.slot_of_pin problem pin in
           let iv = problem.P.intervals.(P.minimum_interval problem ~slot) in
           match (iv.AI.net, (Netlist.Design.pin d pin).Netlist.Pin.x) with
           | 0, 2 -> (pin, stretch pin 0 2 12)
           | 1, 6 -> (pin, stretch pin 1 6 16)
           | _ -> (pin, iv))
  in
  reject "overlapping pair"
    {
      Audit.problem;
      assignment;
      reported_objective =
        List.fold_left
          (fun acc (_, iv) -> acc +. Pinaccess.Objective.f Pinaccess.Objective.Sqrt_length (AI.length iv))
          0.0
          (List.sort_uniq
             (fun (_, a) (_, b) -> AI.compare_geometry a b)
             assignment);
      dual_bound = None;
    }
    (function
      | Audit.Overlap_conflict { track = 3; net_a; net_b } -> net_a <> net_b
      | _ -> false)

let test_inflated_objective () =
  let cert = good_certificate () in
  reject "inflated objective"
    { cert with Audit.reported_objective = cert.Audit.reported_objective +. 10.0 }
    (function Audit.Objective_mismatch _ -> true | _ -> false)

let test_violated_dual_bound () =
  let cert = good_certificate () in
  reject "violated dual bound"
    { cert with Audit.dual_bound = Some (cert.Audit.reported_objective -. 1.0) }
    (function Audit.Dual_bound_violated _ -> true | _ -> false)

let test_violations_collects_all () =
  (* one certificate carrying two independent defects; [violations]
     reports both where [certify] stops at the first *)
  let cert = good_certificate () in
  let entry = List.hd cert.Audit.assignment in
  let cert =
    {
      cert with
      Audit.assignment = entry :: cert.Audit.assignment;
      reported_objective = cert.Audit.reported_objective +. 5.0;
    }
  in
  let vs = Audit.violations cert in
  check "at least two violations" true (List.length vs >= 2);
  check "duplicate reported" true
    (List.exists (function Audit.Duplicate_pin _ -> true | _ -> false) vs);
  check "mismatch reported" true
    (List.exists (function Audit.Objective_mismatch _ -> true | _ -> false) vs)

let test_upper_bound_dominates () =
  let problem = P.build_panel cfg (fig3_design ()) ~panel:0 in
  let ub = Audit.upper_bound problem in
  let r = LR.solve problem in
  check "LR feasible below certified bound" true
    (Sol.objective r.LR.solution <= ub +. 1e-9);
  check "LR claimed bound is a bound too" true
    (match LR.dual_bound r with
    | None -> true
    | Some b -> Sol.objective r.LR.solution <= b +. 1e-6)

let test_whole_design_certifies () =
  let d = fig3_design () in
  List.iter
    (fun kind ->
      let result = PA.optimize ~kind d in
      match Audit.certify_pin_access result with
      | Ok () -> ()
      | Error r ->
        Alcotest.failf "optimize output rejected: %s" (Audit.reason_to_string r))
    [ PA.Lr; PA.Ilp ]

let test_flow_audit_clean () =
  let d = fig3_design () in
  List.iter
    (fun (name, flow) ->
      match Audit.Flow_audit.run flow with
      | [] -> ()
      | i :: _ ->
        Alcotest.failf "%s flow failed audit: %s" name
          (Audit.Flow_audit.issue_to_string i))
    [ ("cpr", Router.Cpr.run d); ("sequential", Router.Sequential.run d) ]

(* property: whatever the generator throws at it, every optimize
   result the solver calls valid also certifies clean externally *)
let prop_optimize_certifies =
  QCheck.Test.make ~count:60 ~name:"optimize output always certifies"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let params =
        Workloads.Generator.random_params ~max_nets:10 ~seed:(Int64.of_int seed) ()
      in
      match Workloads.Generator.generate params with
      | exception Invalid_argument _ -> true
      | design -> (
        let result = PA.optimize ~kind:PA.Lr design in
        match Audit.certify_pin_access result with
        | Ok () -> true
        | Error r ->
          QCheck.Test.fail_reportf "rejected: %s" (Audit.reason_to_string r)))

let () =
  Alcotest.run "audit"
    [
      ( "certificate",
        [
          Alcotest.test_case "good accepted" `Quick test_good_accepted;
          Alcotest.test_case "duplicate pin rejected" `Quick test_duplicate_pin;
          Alcotest.test_case "uncovered pin rejected" `Quick test_uncovered_pin;
          Alcotest.test_case "overlap rejected" `Quick test_overlap_conflict;
          Alcotest.test_case "inflated objective rejected" `Quick
            test_inflated_objective;
          Alcotest.test_case "violated dual bound rejected" `Quick
            test_violated_dual_bound;
          Alcotest.test_case "violations collects all" `Quick
            test_violations_collects_all;
          Alcotest.test_case "upper bound dominates" `Quick
            test_upper_bound_dominates;
        ] );
      ( "whole design",
        [
          Alcotest.test_case "optimize certifies" `Quick test_whole_design_certifies;
          Alcotest.test_case "flows audit clean" `Quick test_flow_audit_clean;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_optimize_certifies ] );
    ]
