module I = Geometry.Interval
module B = Netlist.Builder
module AI = Pinaccess.Access_interval
module Gen = Pinaccess.Interval_gen
module Design = Netlist.Design

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let cfg = Gen.default_config

(* The paper's Figure 3(a) setup: pin a1 spans three tracks; diff-net
   pins b1 and d1 sit inside the net bounding box on one of them. *)
let fig3_design () =
  B.design ~width:20 ~height:10
    ~nets:
      [
        ("a", [ B.pin_span 6 ~lo:2 ~hi:4; B.pin_at 2 7; B.pin_at 17 6 ]);
        ("b", [ B.pin_at 9 3; B.pin_at 9 8 ]);
        ("c", [ B.pin_at 3 2; B.pin_at 13 2 ]);
        ("d", [ B.pin_at 14 3; B.pin_at 15 8 ]);
      ]
    ()

let test_min_interval_always_present () =
  let d = fig3_design () in
  Array.iter
    (fun (p : Netlist.Pin.t) ->
      let cands = Gen.generate_pin cfg d p in
      let mins =
        List.filter (fun (_, _, _, kind) -> kind = AI.Minimum) cands
      in
      check "has a minimum" true (mins <> []);
      List.iter
        (fun (_pins, track, span, _) ->
          check "minimum covers exactly the pin column" true
            (I.equal span (I.point p.Netlist.Pin.x));
          check "minimum on a pin track" true
            (Netlist.Pin.covers_track p track))
        mins)
    (Design.pins d)

let test_all_intervals_cover_pin_column () =
  let d = fig3_design () in
  Array.iter
    (fun (p : Netlist.Pin.t) ->
      List.iter
        (fun (_pins, track, span, _kind) ->
          check "interval on pin track" true (Netlist.Pin.covers_track p track);
          check "span covers pin column" true (I.contains span p.Netlist.Pin.x))
        (Gen.generate_pin cfg d p))
    (Design.pins d)

let test_cutting_lines () =
  let d = fig3_design () in
  (* pin a1 (id 0) at x=6, track 3 hosts diff-net pins b1 (x=9) and
     d1 (x=14): interval right edges on track 3 must include 8 (stop
     before b1), 13 (stop before d1) and the bbox edge *)
  let p = Design.pin d 0 in
  let track3 =
    Gen.generate_pin cfg d p
    |> List.filter (fun (_, t, _, k) -> t = 3 && k = AI.Regular)
    |> List.map (fun (_, _, span, _) -> I.hi span)
    |> List.sort_uniq Int.compare
  in
  check "stops before b1" true (List.mem 8 track3);
  check "stops before d1" true (List.mem 13 track3);
  check "reaches bbox right edge" true (List.mem 17 track3)

let test_count_o_mn () =
  (* pin with m diff-net pins left and n right on its track: the number
     of (left, right) edge combinations on that track is (m+1)*(n+1) *)
  let d =
    B.design ~width:30 ~height:10
      ~nets:
        [
          ("target", [ B.pin_at 15 3; B.pin_at 2 7; B.pin_at 28 7 ]);
          ("l1", [ B.pin_at 5 3 ]);
          ("l2", [ B.pin_at 8 3 ]);
          ("r1", [ B.pin_at 20 3 ]);
        ]
      ()
  in
  let p = Design.pin d 0 in
  let track3_regular =
    Gen.generate_pin cfg d p
    |> List.filter (fun (_, t, _, k) -> t = 3 && k = AI.Regular)
  in
  (* m = 2 (x=5, 8), n = 1 (x=20): (2+1) * (1+1) = 6 *)
  check_int "O(m*n) combinations" 6 (List.length track3_regular)

let test_blockage_clipping () =
  let blockages =
    [
      Netlist.Blockage.make ~layer:Netlist.Blockage.M2 ~track:3
        ~span:(I.make ~lo:10 ~hi:12);
    ]
  in
  let d =
    B.design ~width:30 ~height:10
      ~nets:[ ("a", [ B.pin_at 5 3; B.pin_at 25 3 ]) ]
      ~blockages ()
  in
  let p = Design.pin d 0 in
  List.iter
    (fun (_, _track, span, _) ->
      check "clipped before blockage" true (I.hi span < 10))
    (Gen.generate_pin cfg d p)

let test_pin_unreachable () =
  let blockages =
    [
      Netlist.Blockage.make ~layer:Netlist.Blockage.M2 ~track:3
        ~span:(I.make ~lo:4 ~hi:6);
    ]
  in
  let d =
    B.design ~width:30 ~height:10
      ~nets:[ ("a", [ B.pin_at 5 3; B.pin_at 25 3 ]) ]
      ~blockages ()
  in
  match Gen.generate_pin cfg d (Design.pin d 0) with
  | exception Gen.Pin_unreachable 0 -> ()
  | _ -> Alcotest.fail "expected Pin_unreachable"

let test_shared_intervals () =
  (* two same-net pins on one track: some interval serves both *)
  let d =
    B.design ~width:20 ~height:10
      ~nets:[ ("c", [ B.pin_at 3 2; B.pin_at 13 2 ]) ]
      ()
  in
  let intervals = Gen.generate_panel cfg d ~panel:0 in
  let shared =
    Array.to_list intervals
    |> List.filter (fun (iv : AI.t) -> List.length iv.AI.pins = 2)
  in
  check "a shared interval exists" true (shared <> []);
  List.iter
    (fun (iv : AI.t) ->
      check "covers both pin columns" true
        (I.contains iv.AI.span 3 && I.contains iv.AI.span 13))
    shared

let test_panel_dedupe () =
  let d = fig3_design () in
  let intervals = Gen.generate_panel cfg d ~panel:0 in
  (* ids dense, geometry unique per net *)
  Array.iteri (fun i (iv : AI.t) -> check_int "dense id" i iv.AI.id) intervals;
  let keys =
    Array.to_list intervals
    |> List.map (fun (iv : AI.t) ->
           (iv.AI.net, iv.AI.track, I.lo iv.AI.span, I.hi iv.AI.span))
  in
  check_int "no duplicate geometry" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_m2_bbox_margin () =
  let d =
    B.design ~width:60 ~height:10
      ~nets:[ ("a", [ B.pin_at 10 3; B.pin_at 50 3 ]) ]
      ()
  in
  let narrow = { cfg with Gen.m2_bbox_margin = Some 5 } in
  let p = Design.pin d 0 in
  List.iter
    (fun (_, _t, span, _) ->
      check "clipped to estimated M2 box" true (I.hi span <= 15 && I.lo span >= 5))
    (Gen.generate_pin narrow d p);
  let wide = Gen.generate_pin cfg d p in
  check "net bbox reaches the far pin" true
    (List.exists (fun (_, _, span, _) -> I.hi span = 50) wide)

let test_max_per_pin_cap () =
  let nets =
    ("target", [ B.pin_at 25 3; B.pin_at 2 7; B.pin_at 48 7 ])
    :: List.init 10 (fun i -> (Printf.sprintf "l%d" i, [ B.pin_at (2 + (2 * i)) 3 ]))
    @ List.init 10 (fun i -> (Printf.sprintf "r%d" i, [ B.pin_at (28 + (2 * i)) 3 ]))
  in
  let d = B.design ~width:50 ~height:10 ~nets () in
  let capped = { cfg with Gen.max_per_pin = 8 } in
  let p = Design.pin d 0 in
  let on_track3 =
    Gen.generate_pin capped d p
    |> List.filter (fun (_, t, _, k) -> t = 3 && k = AI.Regular)
  in
  check "capped" true (List.length on_track3 <= 8);
  (* the longest candidate (full free range) must survive the cap *)
  let max_len =
    List.fold_left (fun m (_, _, span, _) -> max m (I.length span)) 0 on_track3
  in
  let uncapped =
    Gen.generate_pin cfg d p
    |> List.filter (fun (_, t, _, k) -> t = 3 && k = AI.Regular)
    |> List.fold_left (fun m (_, _, span, _) -> max m (I.length span)) 0
  in
  check_int "maximum interval survives" uncapped max_len

(* ----------------------------------------------------------------- *)
(* qcheck: the degenerate shapes the library checker exercises —      *)
(* zero-width (single-track) pins, pins flush with the die edge, and  *)
(* single-track cells where every pin shares one track.               *)
(* ----------------------------------------------------------------- *)

(* a random degenerate single-row design: narrow die, pins allowed at
   x = 0 and x = width-1, optionally all forced onto one track *)
let degenerate_gen =
  QCheck.Gen.(
    let* width = int_range 3 16 in
    let* single_track = bool in
    let* shared_track = int_range 1 8 in
    let* npins = int_range 1 4 in
    let* raw =
      list_repeat npins
        (let* edge = int_range 0 2 in
         let* x = int_range 0 (width - 1) in
         let x = match edge with 0 -> 0 | 1 -> width - 1 | _ -> x in
         let* t = int_range 1 8 in
         let* h = int_range 1 2 in
         return (x, (if single_track then shared_track else t), h))
    in
    (* one pin per column keeps the builder happy *)
    let seen = Hashtbl.create 8 in
    let sites =
      List.filter
        (fun (x, _, _) ->
          if Hashtbl.mem seen x then false
          else begin
            Hashtbl.add seen x ();
            true
          end)
        raw
    in
    let nets =
      List.mapi
        (fun i (x, t, h) ->
          ( Printf.sprintf "n%d" i,
            [
              (if single_track || h = 1 then B.pin_at x t
               else B.pin_span x ~lo:t ~hi:(min 8 (t + h - 1)));
            ] ))
        sites
    in
    return (width, nets))

let arbitrary_degenerate =
  QCheck.make
    ~print:(fun (w, nets) ->
      Printf.sprintf "width=%d pins=%d" w (List.length nets))
    degenerate_gen

(* Theorem 1 at the boundary: whatever the degeneracy — a pin of one
   track, a pin at x = 0 or x = width-1, a whole cell on one track —
   generation must still produce the minimum interval, and every
   candidate must stay on the die, on a pin track, covering the pin
   column. *)
let prop_degenerate_candidates_sound =
  QCheck.Test.make ~name:"degenerate pins: candidates sound" ~count:200
    arbitrary_degenerate (fun (width, nets) ->
      let d = B.design ~width ~height:10 ~nets () in
      Array.for_all
        (fun (p : Netlist.Pin.t) ->
          let cands = Gen.generate_pin cfg d p in
          List.exists (fun (_, _, _, k) -> k = AI.Minimum) cands
          && List.for_all
               (fun (_, track, span, _) ->
                 Netlist.Pin.covers_track p track
                 && I.contains span p.Netlist.Pin.x
                 && I.lo span >= 0
                 && I.hi span <= width - 1)
               cands)
        (Design.pins d))

(* min_window (library-check mode) must widen, never shrink: every
   net-bbox candidate survives, every extra grid lies inside the
   window hull clipped to the die. *)
let prop_min_window_widens =
  QCheck.Test.make ~name:"degenerate pins: min_window widens" ~count:200
    arbitrary_degenerate (fun (width, nets) ->
      let d = B.design ~width ~height:10 ~nets () in
      let windowed = { cfg with Gen.min_window = Some 4 } in
      Array.for_all
        (fun (p : Netlist.Pin.t) ->
          let plain =
            Gen.generate_pin cfg d p
            |> List.map (fun (_, t, s, k) -> (t, I.lo s, I.hi s, k))
          in
          let wide = Gen.generate_pin windowed d p in
          let x = p.Netlist.Pin.x in
          List.for_all
            (fun (t, lo, hi, k) ->
              (* same-geometry candidate still generated, possibly wider *)
              List.exists
                (fun (_, t', s', k') ->
                  t' = t && k' = k && I.lo s' <= lo && I.hi s' >= hi)
                wide)
            plain
          && begin
               let bbox =
                 Geometry.Rect.xs (Design.net_bbox d p.Netlist.Pin.net)
               in
               List.for_all
                 (fun (_, _, span, _) ->
                   I.lo span >= max 0 (min (x - 4) (I.lo bbox))
                   && I.hi span <= min (width - 1) (max (x + 4) (I.hi bbox)))
                 wide
             end)
        (Design.pins d))

let () =
  Alcotest.run "interval_gen"
    [
      ( "generation",
        [
          Alcotest.test_case "minimum present" `Quick test_min_interval_always_present;
          Alcotest.test_case "covers pin column" `Quick test_all_intervals_cover_pin_column;
          Alcotest.test_case "cutting lines" `Quick test_cutting_lines;
          Alcotest.test_case "O(m*n) count" `Quick test_count_o_mn;
          Alcotest.test_case "blockage clipping" `Quick test_blockage_clipping;
          Alcotest.test_case "pin unreachable" `Quick test_pin_unreachable;
          Alcotest.test_case "shared intervals" `Quick test_shared_intervals;
          Alcotest.test_case "panel dedupe" `Quick test_panel_dedupe;
          Alcotest.test_case "m2 bbox margin" `Quick test_m2_bbox_margin;
          Alcotest.test_case "max_per_pin cap" `Quick test_max_per_pin_cap;
        ] );
      ( "degenerate",
        [
          QCheck_alcotest.to_alcotest prop_degenerate_candidates_sound;
          QCheck_alcotest.to_alcotest prop_min_window_widens;
        ] );
    ]
